"""OS page-cache model: 4 KB pages between the application and FUSE.

Resident pages serve memory accesses at DRAM speed; misses fault the page
in from the FUSE layer (which fetches whole 256 KB chunks from the store —
the granularity bridge of paper §III-D).  Dirty pages are written back to
FUSE at page granularity, matching "the OS page cache sends out write
requests to the FUSE layer on a page granularity".

Like the chunk cache, the page dict is shadowed by a per-path index and
per-page ``lru`` stamps so msync/munmap walk only the target file's pages
while replaying exact LRU order.  Runs of pages move through the stack in
batch: faults pull each chunk piece with one ``read_into`` call, and
msync flushes runs of contiguous dirty pages with one ``write_ranges``
call that charges the same per-page FUSE overhead the page-by-page path
would have — the simulated event sequence is identical, only the Python
work per page shrinks.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.devices.base import AccessKind
from repro.errors import MmapError
from repro.fusefs.mount import FuseMount
from repro.sim.events import Event
from repro.store.chunk import PAGE_SIZE
from repro.util.recorder import MetricsRecorder

#: Gate for the no-yield bulk page-run fast paths in fault and write.
#: They are eligible only where the general per-page route (``_insert``)
#: would not have yielded — no eviction, no in-flight flush — so
#: flipping this off must be byte- and virtual-time-invisible; tests
#: fuzz that identity on random schedules (tests/test_bulk_runs_fuzz.py).
BULK_PAGE_RUNS = True


@dataclass
class PageCacheStats:
    """Hit/miss and byte-flow accounting."""

    hits: int = 0
    misses: int = 0
    faulted_bytes: int = 0  # FUSE -> page cache
    writeback_bytes: int = 0  # page cache -> FUSE

    @property
    def hit_rate(self) -> float:
        """Fraction of page lookups served from resident pages."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Page:
    __slots__ = ("data", "dirty", "lru")

    def __init__(self, page_size: int, data: bytearray | None = None) -> None:
        # Callers with a full page of payload in hand pass it directly,
        # skipping the zero-fill that a copy would immediately overwrite.
        self.data = bytearray(page_size) if data is None else data
        self.dirty = False
        # Recency stamp mirroring this page's position in the LRU dict
        # (strictly increasing across touches), so a per-path sync can
        # replay LRU order without scanning the whole dict.
        self.lru = 0


class PageCache:
    """Per-node LRU cache of file pages, backed by the node's FUSE mount."""

    #: Kernel/FUSE crossing cost per page-granular request.  mmap page
    #: faults and dirty-page write-backs each pay one user-kernel-user
    #: round trip through the FUSE daemon; this is why the paper's STREAM
    #: over NVMalloc runs far below raw device bandwidth (Table III).
    FUSE_OP_OVERHEAD = 25e-6

    def __init__(
        self,
        mount: FuseMount,
        *,
        capacity_bytes: int,
        page_size: int = PAGE_SIZE,
        fuse_op_overhead: float = FUSE_OP_OVERHEAD,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity_bytes < page_size:
            raise MmapError(
                f"page cache of {capacity_bytes} bytes cannot hold one page"
            )
        self.mount = mount
        self.node = mount.node
        # Direct references for the per-access hot paths (two attribute
        # hops each otherwise).
        self._engine = mount.node.engine
        self._dram = mount.node.dram
        self.page_size = page_size
        self.fuse_op_overhead = fuse_op_overhead
        self.capacity_pages = capacity_bytes // page_size
        self.metrics = metrics if metrics is not None else mount.metrics
        self.stats = PageCacheStats()
        self._pages: OrderedDict[tuple[str, int], _Page] = OrderedDict()
        # Per-path view of ``_pages`` keys for path-scoped sync/drop.
        self._by_path: dict[str, set[int]] = {}
        # Pages whose eviction flush is in flight: concurrent faults must
        # wait for the flush to reach FUSE before refetching, or they
        # would read pre-flush (stale) bytes.
        self._inflight: dict[tuple[str, int], Event] = {}
        # Per-path view of ``_inflight``; inner dicts keep insertion
        # order so drain_path waits on the oldest flush first, exactly
        # as a whole-dict scan would.
        self._inflight_by_path: dict[str, dict[int, Event]] = {}
        self._tick = 0
        # Hot-path counters, resolved on first use (snapshot-identical
        # to per-call ``metrics.add``: untouched ones never materialize).
        self._read_counter = None
        self._write_counter = None
        self._fault_counter = None
        self._writeback_counter = None
        # Async-checkpoint write hooks (snapshot guards, mutation
        # trackers), keyed by backing path.  Empty except for paths in an
        # async checkpoint chain, so the hot write path pays a single
        # truthiness check otherwise.
        self._write_hooks: dict[str, list[object]] = {}
        # Page-cache pages occupy node DRAM.
        mount.node.dram.allocate(capacity_bytes)

    def __len__(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    def _dram_access(self, kind: AccessKind, nbytes: int) -> Generator[Event, object, None]:
        """Charge DRAM time for bytes served from resident pages."""
        if nbytes:
            yield from self._dram.access(kind, nbytes)

    def _fuse_cache(self):
        return self.mount.cache

    def _new_page(
        self, path: str, page_idx: int, data: bytearray | None = None
    ) -> _Page:
        """Create and index a resident page (caller checked capacity)."""
        page = _Page(self.page_size, data)
        self._tick += 1
        page.lru = self._tick
        self._pages[(path, page_idx)] = page
        bucket = self._by_path.get(path)
        if bucket is None:
            bucket = self._by_path[path] = set()
        bucket.add(page_idx)
        return page

    def _evict_clean_run(self) -> bool:
        """Pop clean LRU victims until a slot is free, without yielding.

        Mirrors the eviction arm of :meth:`_insert` for victims whose
        flush would be a no-op.  Stops short at the first dirty victim
        (its flush yields) and returns False; the caller must then fall
        back to ``_insert``, which evicts that very victim through the
        flushing path — in the same LRU order, since nothing was popped
        past it here.
        """
        pages = self._pages
        capacity = self.capacity_pages
        by_path = self._by_path
        while len(pages) >= capacity:
            vkey = next(iter(pages))
            if pages[vkey].dirty:
                return False
            del pages[vkey]
            vpath, vidx = vkey
            vbucket = by_path[vpath]
            vbucket.discard(vidx)
            if not vbucket:
                del by_path[vpath]
        return True

    def _flush_page(
        self, path: str, page_idx: int, page: _Page
    ) -> Generator[Event, object, None]:
        offset = page_idx * self.page_size
        length = min(self.page_size, self.mount.stat_size(path) - offset)
        chunk_index = offset // self.mount.chunk_size
        chunk_off = offset - chunk_index * self.mount.chunk_size
        # Un-dirty before yielding: writes landing while the payload is
        # in flight re-dirty the page and flush later.
        data = page.data
        payload = (
            bytes(data) if length == len(data)
            else bytes(memoryview(data)[:length])
        )
        page.dirty = False
        if self.fuse_op_overhead:
            yield self._engine.timeout(self.fuse_op_overhead)
        yield from self._fuse_cache().write(path, chunk_index, chunk_off, payload)
        self.stats.writeback_bytes += length
        counter = self._writeback_counter
        if counter is None:
            counter = self._writeback_counter = self.metrics.counter(
                "pagecache.writeback.bytes"
            )
        counter.total += length
        counter.count += 1

    def _insert(
        self, path: str, page_idx: int, data: bytearray | None = None
    ) -> Generator[Event, object, tuple[_Page, bool]]:
        """Pin a page slot for ``(path, page_idx)``.

        Returns ``(page, created)``: ``created`` is False when the page
        was already (or concurrently became) resident — fillers must not
        overwrite such a page with older store bytes, because another
        rank may have written to it since.  A created page adopts
        ``data`` (a caller-owned full-page buffer) when given, skipping
        the zero-fill a later full overwrite would waste.
        """
        key = (path, page_idx)
        pages = self._pages
        mount = self.mount
        inflight = self._inflight
        capacity = self.capacity_pages
        by_path = self._by_path
        page_size = self.page_size
        chunk_size = mount.chunk_size
        stat_size = mount.stat_size
        cache_write = mount.cache.write
        engine = self._engine
        while True:
            # Wait out an in-flight eviction flush of this very page.
            while key in inflight:
                yield inflight[key]
            page = pages.get(key)
            if page is not None:
                # Someone else faulted it back in while we waited.
                pages.move_to_end(key)
                self._tick += 1
                page.lru = self._tick
                return page, False
            while len(pages) >= capacity:
                # Evict the LRU page, flushing dirty victims through
                # FUSE first.  The eviction and the flush body (kept in
                # sync with _flush_page, which sync_path still uses) are
                # inlined rather than delegated to helper generators:
                # every event of every flush resumes through this frame,
                # so each avoided ``yield from`` hop is paid back
                # hundreds of thousands of times per run.
                vkey, victim = pages.popitem(last=False)
                vpath, vidx = vkey
                bucket = by_path[vpath]
                bucket.discard(vidx)
                if not bucket:
                    del by_path[vpath]
                if victim.dirty:
                    done = Event(engine)
                    inflight[vkey] = done
                    ibucket = self._inflight_by_path.get(vpath)
                    if ibucket is None:
                        ibucket = self._inflight_by_path[vpath] = {}
                    ibucket[vidx] = done
                    try:
                        offset = vidx * page_size
                        length = min(page_size, stat_size(vpath) - offset)
                        chunk_index = offset // chunk_size
                        chunk_off = offset - chunk_index * chunk_size
                        # Un-dirty before yielding: writes landing while
                        # the payload is in flight re-dirty the page.
                        vdata = victim.data
                        payload = (
                            bytes(vdata) if length == len(vdata)
                            else bytes(memoryview(vdata)[:length])
                        )
                        victim.dirty = False
                        if self.fuse_op_overhead:
                            yield engine.timeout(self.fuse_op_overhead)
                        yield from cache_write(
                            vpath, chunk_index, chunk_off, payload
                        )
                        self.stats.writeback_bytes += length
                        counter = self._writeback_counter
                        if counter is None:
                            counter = self._writeback_counter = (
                                self.metrics.counter("pagecache.writeback.bytes")
                            )
                        counter.total += length
                        counter.count += 1
                    finally:
                        del inflight[vkey]
                        del ibucket[vidx]
                        if not ibucket:
                            del self._inflight_by_path[vpath]
                        done.succeed(None)
            if key in pages or key in inflight:
                continue  # appeared (or re-entered eviction) while evicting
            return self._new_page(path, page_idx, data), True

    def _fault_range(
        self, path: str, first_page: int, last_page: int
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_fault_range_impl`, spanned when tracing is on."""
        gen = self._fault_range_impl(path, first_page, last_page)
        tracer = self._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "pagecache", "fault", gen,
            path=path, pages=last_page - first_page + 1,
        )

    def _fault_range_impl(
        self, path: str, first_page: int, last_page: int
    ) -> Generator[Event, object, None]:
        """Fault pages ``first_page..last_page`` (inclusive) in from FUSE.

        Contiguous missing pages are requested as one FUSE read per chunk
        piece, but inserted (and later evictable) page by page.
        """
        # Pages of this range may have in-flight eviction flushes; their
        # bytes are not in FUSE yet, so fetching now would resurrect
        # stale data.  Wait for those flushes to land first.
        inflight = self._inflight
        if inflight:
            for page_idx in range(first_page, last_page + 1):
                key = (path, page_idx)
                while key in inflight:
                    yield inflight[key]
        offset = first_page * self.page_size
        size = self.mount.stat_size(path)
        length = min((last_page + 1) * self.page_size, size) - offset
        cache = self._fuse_cache()
        # Each faulted page is one mmap fault serviced through the FUSE
        # daemon: charge the kernel-crossing overhead per page.
        npages = last_page - first_page + 1
        if self.fuse_op_overhead:
            yield self._engine.timeout(npages * self.fuse_op_overhead)
        pages = self._pages
        pages_get = pages.get
        move_to_end = pages.move_to_end
        page_size = self.page_size
        capacity = self.capacity_pages
        chunk_size = self.mount.chunk_size
        by_path = self._by_path
        cursor = offset
        end = offset + length
        # ``cursor`` stays page-aligned throughout: it starts at a page
        # boundary and chunk pieces are page multiples except the file
        # tail, which is the last piece.  So the inner loop can count
        # page indices instead of dividing per page, and slice full
        # pages straight out of the fetch buffer (a bytearray slice is
        # already the fresh copy the new page adopts).
        while cursor < end:
            chunk_index = cursor // chunk_size
            chunk_off = cursor - chunk_index * chunk_size
            piece = min(chunk_size - chunk_off, end - cursor)
            buf = bytearray(piece)
            yield from cache.read_into(path, chunk_index, chunk_off, piece, buf)
            page_idx = cursor // page_size
            inner = 0
            # Local mirrors for the no-yield run over this piece's pages:
            # ``tick`` is written back before any yield (and at piece
            # end); ``bucket`` is re-fetched after any yield because an
            # eviction inside _insert may drop and recreate this path's
            # bucket set.
            tick = self._tick
            bucket = by_path.get(path)
            bulk = BULK_PAGE_RUNS
            while inner < piece:
                remaining = piece - inner
                seg_len = page_size if remaining >= page_size else remaining
                key = (path, page_idx)
                page = pages_get(key)
                if page is not None:
                    # Concurrently faulted back in: only touch the LRU
                    # position, never overwrite (it may hold newer bytes).
                    move_to_end(key)
                    tick += 1
                    page.lru = tick
                elif bulk and key not in inflight and (
                    len(pages) < capacity or self._evict_clean_run()
                ):
                    # Fast path: no eviction flush and no in-flight wait
                    # — _insert would have returned without yielding
                    # (clean LRU victims are popped inline; a dirty one
                    # falls through to _insert).  Re-mirror the bucket:
                    # the evict run may have dropped this path's entry.
                    # (_new_page inlined: this stretch cannot yield, so
                    # the mirrors stay coherent across the whole run.)
                    bucket = by_path.get(path)
                    page = _Page.__new__(_Page)
                    if seg_len == page_size:
                        page.data = buf[inner : inner + page_size]
                    else:
                        data = bytearray(page_size)
                        data[:seg_len] = buf[inner : inner + seg_len]
                        page.data = data
                    page.dirty = False
                    tick += 1
                    page.lru = tick
                    pages[key] = page
                    if bucket is None:
                        bucket = by_path[path] = set()
                    bucket.add(page_idx)
                else:
                    self._tick = tick
                    page, created = yield from self._insert(path, page_idx)
                    tick = self._tick
                    bucket = by_path.get(path)
                    if created:
                        page.data[:seg_len] = buf[inner : inner + seg_len]
                inner += page_size
                page_idx += 1
            self._tick = tick
            cursor += piece
        self.stats.faulted_bytes += length
        counter = self._fault_counter
        if counter is None:
            counter = self._fault_counter = self.metrics.counter(
                "pagecache.fault.bytes"
            )
        counter.total += length
        counter.count += 1

    # ------------------------------------------------------------------
    # Public byte-range access
    # ------------------------------------------------------------------
    def read(
        self, path: str, offset: int, length: int
    ) -> Generator[Event, object, bytearray]:
        """Read bytes, faulting missing pages in from FUSE.

        The returned buffer is a fresh snapshot owned by the caller —
        no cache page aliases it, so callers may mutate or adopt it.
        """
        self._check(path, offset, length)
        if length == 0:
            return bytearray()
        page_size = self.page_size
        first = offset // page_size
        last = (offset + length - 1) // page_size
        pages = self._pages
        pages_get = pages.get
        move_to_end = pages.move_to_end
        # Group contiguous missing pages into ranged faults.  ``tick``
        # mirrors self._tick as a local; it is written back before every
        # yield (other processes stamp pages too) and reloaded after.
        run_start: int | None = None
        resident = 0
        misses = 0
        tick = self._tick
        for page_idx in range(first, last + 1):
            key = (path, page_idx)
            page = pages_get(key)
            if page is not None:
                move_to_end(key)
                tick += 1
                page.lru = tick
                resident += 1
                if run_start is not None:
                    self._tick = tick
                    yield from self._fault_range(path, run_start, page_idx - 1)
                    tick = self._tick
                    run_start = None
            else:
                misses += 1
                if run_start is None:
                    run_start = page_idx
        self._tick = tick
        self.stats.hits += resident
        self.stats.misses += misses
        if run_start is not None:
            yield from self._fault_range(path, run_start, last)
        if resident:
            # Inlined StorageDevice.access (DRAM has no _pre_access hook;
            # event-for-event identical, one generator hop less).
            nbytes = resident * page_size
            dram = self._dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._read_stats
                duration = time_fn(nbytes)
                bytes_counter.total += nbytes
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self._engine.timeout(duration)
            finally:
                dram._release(req)
        # Assemble the requested bytes from resident pages.  Only the
        # first page can start mid-page, so the page index advances by
        # one per iteration instead of re-dividing the cursor.
        out = bytearray(length)
        pos = 0
        page_idx = offset // page_size
        in_page = offset - page_idx * page_size
        tick = self._tick
        while pos < length:
            piece = page_size - in_page
            rest = length - pos
            if piece > rest:
                piece = rest
            key = (path, page_idx)
            page = pages_get(key)
            if page is None:
                # A range larger than the cache evicted its own head while
                # faulting its tail; refault just this page.
                self._tick = tick
                yield from self._fault_range(path, page_idx, page_idx)
                tick = self._tick
                page = pages[key]
            move_to_end(key)
            tick += 1
            page.lru = tick
            if piece == page_size:
                out[pos : pos + page_size] = page.data
            else:
                out[pos : pos + piece] = memoryview(page.data)[
                    in_page : in_page + piece
                ]
            pos += piece
            page_idx += 1
            in_page = 0
        self._tick = tick
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "pagecache.read.bytes"
            )
        counter.total += length
        counter.count += 1
        return out

    def write(
        self, path: str, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write bytes, dirtying pages (write-allocate, write-back)."""
        self._check(path, offset, len(data))
        if not data:
            return
        if self._write_hooks:
            hooks = self._write_hooks.get(path)
            if hooks:
                # A write to a chunk an async checkpoint has not yet
                # drained triggers copy-on-write: the snapshot guard
                # captures the frozen bytes (and may block on staging
                # backpressure) before the store sees the new data;
                # mutation trackers record the touch for the next
                # epoch's dirty diff.
                for hook in list(hooks):
                    yield from hook.before_write(offset, len(data))
        pages = self._pages
        pages_get = pages.get
        move_to_end = pages.move_to_end
        inflight = self._inflight
        page_size = self.page_size
        capacity = self.capacity_pages
        length = len(data)
        src = memoryview(data)
        written_resident = 0
        hits = 0
        misses = 0
        # Only the first page can start mid-page: advance the page index
        # instead of re-dividing the cursor each iteration.  ``start``
        # is the position within ``data`` (== cursor - offset).  ``tick``
        # and ``bucket`` mirror self._tick / this path's index across the
        # no-yield stretches (written back before any yield, re-fetched
        # after — evictions inside _insert may recreate the bucket).
        page_idx = offset // page_size
        in_page = offset - page_idx * page_size
        start = 0
        by_path = self._by_path
        bucket = by_path.get(path)
        tick = self._tick
        bulk = BULK_PAGE_RUNS
        while start < length:
            piece = page_size - in_page
            rest = length - start
            if piece > rest:
                piece = rest
            key = (path, page_idx)
            page = pages_get(key)
            if page is None:
                misses += 1
                if piece == page_size:
                    # Full-page overwrite: allocate without fetching,
                    # handing the payload straight to the new page (no
                    # zero-fill, no second copy).
                    if bulk and key not in inflight and (
                        len(pages) < capacity or self._evict_clean_run()
                    ):
                        # Re-mirror the bucket: the clean-evict run may
                        # have dropped this path's entry.
                        bucket = by_path.get(path)
                        # _new_page inlined: this stretch cannot yield.
                        page = _Page.__new__(_Page)
                        page.data = bytearray(src[start : start + page_size])
                        page.dirty = True
                        tick += 1
                        page.lru = tick
                        pages[key] = page
                        if bucket is None:
                            bucket = by_path[path] = set()
                        bucket.add(page_idx)
                        written_resident += page_size
                        start += page_size
                        page_idx += 1
                        continue
                    self._tick = tick
                    page, created = yield from self._insert(
                        path, page_idx, bytearray(src[start : start + page_size])
                    )
                    tick = self._tick
                    bucket = by_path.get(path)
                    if created:
                        page.dirty = True
                        written_resident += page_size
                        start += page_size
                        page_idx += 1
                        continue
                else:
                    self._tick = tick
                    yield from self._fault_range(path, page_idx, page_idx)
                    tick = self._tick
                    bucket = by_path.get(path)
                    page = pages[key]
            else:
                hits += 1
                move_to_end(key)
                tick += 1
                page.lru = tick
            page.data[in_page : in_page + piece] = src[start : start + piece]
            page.dirty = True
            written_resident += piece
            start += piece
            page_idx += 1
            in_page = 0
        self._tick = tick
        self.stats.hits += hits
        self.stats.misses += misses
        if written_resident:
            # Inlined StorageDevice.access (DRAM has no _pre_access hook;
            # event-for-event identical, one generator hop less).
            dram = self._dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._write_stats
                duration = time_fn(written_resident)
                bytes_counter.total += written_resident
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self._engine.timeout(duration)
            finally:
                dram._release(req)
        counter = self._write_counter
        if counter is None:
            counter = self._write_counter = self.metrics.counter(
                "pagecache.write.bytes"
            )
        counter.total += len(data)
        counter.count += 1

    # ------------------------------------------------------------------
    def drain_path(self, path: str) -> Generator[Event, object, None]:
        """Wait until no eviction flush for ``path`` is in flight."""
        while True:
            bucket = self._inflight_by_path.get(path)
            if not bucket:
                return
            yield next(iter(bucket.values()))

    # ------------------------------------------------------------------
    # Async-checkpoint snapshot support
    # ------------------------------------------------------------------
    def register_write_hook(self, path: str, hook: object) -> None:
        """Route writes to ``path`` through ``hook.before_write`` until
        :meth:`unregister_write_hook`.  Hooks run in registration order;
        registering the same hook object twice is an error."""
        hooks = self._write_hooks.setdefault(path, [])
        if any(existing is hook for existing in hooks):
            raise MmapError(f"{path!r} already has this write hook")
        hooks.append(hook)

    def unregister_write_hook(self, path: str, hook: object) -> None:
        """Remove one write hook for ``path`` (idempotent)."""
        hooks = self._write_hooks.get(path)
        if not hooks:
            return
        self._write_hooks[path] = [h for h in hooks if h is not hook]
        if not self._write_hooks[path]:
            del self._write_hooks[path]

    def dirty_chunk_indices(self, path: str, chunk_size: int) -> set[int]:
        """Chunk indices of ``path`` covered by at least one dirty page.

        Pure metadata (no events): used by incremental checkpoints to
        find chunks whose store copy is behind the mapped view.
        """
        bucket = self._by_path.get(path)
        if not bucket:
            return set()
        pages = self._pages
        pages_per_chunk = max(1, chunk_size // self.page_size)
        return {
            page_idx // pages_per_chunk
            for page_idx in bucket
            if pages[(path, page_idx)].dirty
        }

    def sync_path(self, path: str) -> Generator[Event, object, None]:
        """Dispatch :meth:`_sync_path_impl`, spanned when tracing is on."""
        gen = self._sync_path_impl(path)
        tracer = self._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("pagecache", "sync", gen, path=path)

    def _sync_path_impl(self, path: str) -> Generator[Event, object, None]:
        """Flush all dirty pages of ``path`` to FUSE (msync).

        Runs of LRU-consecutive, file-contiguous full dirty pages inside
        one chunk are shipped with a single ``write_ranges`` call whose
        ``pre_range_delay`` charges the same per-page FUSE crossing the
        page-by-page path pays; each page's payload is snapshotted (and
        its dirty bit cleared) lazily right before its range goes out, so
        writes racing the sync re-dirty exactly the pages they would
        have.  The file's tail page, being a partial write, still flushes
        through :meth:`_flush_page`.
        """
        yield from self.drain_path(path)
        bucket = self._by_path.get(path)
        if bucket:
            pages = self._pages
            page_size = self.page_size
            size = self.mount.stat_size(path)
            chunk_size = self.mount.chunk_size
            cache = self._fuse_cache()
            overhead = self.fuse_op_overhead or None
            # Snapshot this path's pages in LRU order (stamp order ==
            # dict order); dirtiness is re-checked at flush time, as the
            # page-by-page loop would.  Stamps are unique, so a numpy
            # argsort over the stamp array replays the exact order the
            # tuple sort produced, without B log B tuple comparisons.
            # Batch *boundaries* stay lazily evaluated below: a page
            # dirtied while an earlier batch's flush was in flight must
            # still be picked up when the walk reaches it.
            indices = list(bucket)
            path_pages = [pages[(path, i)] for i in indices]
            order = np.argsort(
                np.fromiter(
                    (p.lru for p in path_pages), np.int64, len(indices)
                )
            )
            snapshot = [
                (indices[k], path_pages[k]) for k in order.tolist()
            ]
            j = 0
            total = len(snapshot)
            while j < total:
                page_idx, page = snapshot[j]
                if not page.dirty:
                    j += 1
                    continue
                offset = page_idx * page_size
                if size - offset < page_size:
                    # Tail page: partial write, flush alone.
                    yield from self._flush_page(path, page_idx, page)
                    j += 1
                    continue
                chunk_index = offset // chunk_size
                chunk_base = chunk_index * chunk_size
                # Extend over LRU-consecutive, index-contiguous full
                # dirty pages of the same chunk.
                batch = [(page_idx, page)]
                k = j + 1
                while k < total:
                    nxt_idx, nxt_page = snapshot[k]
                    nxt_off = nxt_idx * page_size
                    if (
                        nxt_idx != batch[-1][0] + 1
                        or not nxt_page.dirty
                        or nxt_off // chunk_size != chunk_index
                        or size - nxt_off < page_size
                    ):
                        break
                    batch.append((nxt_idx, nxt_page))
                    k += 1
                flushed = 0

                def _ranges() -> Generator[tuple[int, bytes], None, None]:
                    # Consumed lazily by write_ranges: page m's payload
                    # is snapshotted (and un-dirtied) only after page
                    # m-1's write completed — the same instant the
                    # page-by-page loop would have snapshotted it.
                    nonlocal flushed
                    for idx2, pg in batch:
                        if not pg.dirty:
                            continue  # flushed meanwhile (e.g. evicted)
                        payload = bytes(pg.data)
                        pg.dirty = False
                        flushed += 1
                        yield (idx2 * page_size - chunk_base, payload)

                yield from cache.write_ranges(
                    path, chunk_index, _ranges(), pre_range_delay=overhead
                )
                if flushed:
                    self.stats.writeback_bytes += flushed * page_size
                    counter = self._writeback_counter
                    if counter is None:
                        counter = self._writeback_counter = self.metrics.counter(
                            "pagecache.writeback.bytes"
                        )
                    counter.total += flushed * page_size
                    counter.count += flushed
                j = k
        yield from self.drain_path(path)

    def drop_path(self, path: str, *, sync: bool = True) -> Generator[Event, object, None]:
        """Flush (optionally) and evict all pages of ``path`` (munmap)."""
        if sync:
            yield from self.sync_path(path)
        else:
            yield from self.drain_path(path)
        bucket = self._by_path.pop(path, None)
        if bucket:
            pages = self._pages
            for page_idx in bucket:
                del pages[(path, page_idx)]

    def _check(self, path: str, offset: int, length: int) -> None:
        size = self.mount.stat_size(path)
        if offset < 0 or length < 0 or offset + length > size:
            raise MmapError(
                f"page-cache access [{offset}, {offset + length}) outside "
                f"{path!r} of size {size}"
            )
