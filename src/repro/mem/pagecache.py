"""OS page-cache model: 4 KB pages between the application and FUSE.

Resident pages serve memory accesses at DRAM speed; misses fault the page
in from the FUSE layer (which fetches whole 256 KB chunks from the store —
the granularity bridge of paper §III-D).  Dirty pages are written back to
FUSE at page granularity, matching "the OS page cache sends out write
requests to the FUSE layer on a page granularity".
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator
from dataclasses import dataclass

from repro.devices.base import AccessKind
from repro.errors import MmapError
from repro.fusefs.mount import FuseMount
from repro.sim.events import Event
from repro.store.chunk import PAGE_SIZE
from repro.util.recorder import MetricsRecorder


@dataclass
class PageCacheStats:
    """Hit/miss and byte-flow accounting."""

    hits: int = 0
    misses: int = 0
    faulted_bytes: int = 0  # FUSE -> page cache
    writeback_bytes: int = 0  # page cache -> FUSE

    @property
    def hit_rate(self) -> float:
        """Fraction of page lookups served from resident pages."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Page:
    __slots__ = ("data", "dirty")

    def __init__(self, page_size: int) -> None:
        self.data = bytearray(page_size)
        self.dirty = False


class PageCache:
    """Per-node LRU cache of file pages, backed by the node's FUSE mount."""

    #: Kernel/FUSE crossing cost per page-granular request.  mmap page
    #: faults and dirty-page write-backs each pay one user-kernel-user
    #: round trip through the FUSE daemon; this is why the paper's STREAM
    #: over NVMalloc runs far below raw device bandwidth (Table III).
    FUSE_OP_OVERHEAD = 25e-6

    def __init__(
        self,
        mount: FuseMount,
        *,
        capacity_bytes: int,
        page_size: int = PAGE_SIZE,
        fuse_op_overhead: float = FUSE_OP_OVERHEAD,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity_bytes < page_size:
            raise MmapError(
                f"page cache of {capacity_bytes} bytes cannot hold one page"
            )
        self.mount = mount
        self.node = mount.node
        self.page_size = page_size
        self.fuse_op_overhead = fuse_op_overhead
        self.capacity_pages = capacity_bytes // page_size
        self.metrics = metrics if metrics is not None else mount.metrics
        self.stats = PageCacheStats()
        self._pages: OrderedDict[tuple[str, int], _Page] = OrderedDict()
        # Pages whose eviction flush is in flight: concurrent faults must
        # wait for the flush to reach FUSE before refetching, or they
        # would read pre-flush (stale) bytes.
        self._inflight: dict[tuple[str, int], Event] = {}
        # Page-cache pages occupy node DRAM.
        mount.node.dram.allocate(capacity_bytes)

    def __len__(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------------
    def _dram_access(self, kind: AccessKind, nbytes: int) -> Generator[Event, object, None]:
        """Charge DRAM time for bytes served from resident pages."""
        if nbytes:
            yield from self.node.dram.access(kind, nbytes)

    def _fuse_cache(self):
        return self.mount.cache

    def _evict_one(self) -> Generator[Event, object, None]:
        key, page = self._pages.popitem(last=False)
        if page.dirty:
            done = Event(self.mount.node.engine)
            self._inflight[key] = done
            try:
                yield from self._flush_page(key[0], key[1], page)
            finally:
                del self._inflight[key]
                done.succeed(None)

    def _flush_page(
        self, path: str, page_idx: int, page: _Page
    ) -> Generator[Event, object, None]:
        offset = page_idx * self.page_size
        length = min(self.page_size, self.mount.stat_size(path) - offset)
        chunk_index = offset // self.mount.chunk_size
        chunk_off = offset - chunk_index * self.mount.chunk_size
        # Un-dirty before yielding: writes landing while the payload is
        # in flight re-dirty the page and flush later.
        payload = bytes(page.data[:length])
        page.dirty = False
        if self.fuse_op_overhead:
            yield self.node.engine.timeout(self.fuse_op_overhead)
        yield from self._fuse_cache().write(path, chunk_index, chunk_off, payload)
        self.stats.writeback_bytes += length
        self.metrics.add("pagecache.writeback.bytes", length)

    def _insert(
        self, path: str, page_idx: int
    ) -> Generator[Event, object, tuple[_Page, bool]]:
        """Pin a page slot for ``(path, page_idx)``.

        Returns ``(page, created)``: ``created`` is False when the page
        was already (or concurrently became) resident — fillers must not
        overwrite such a page with older store bytes, because another
        rank may have written to it since.
        """
        key = (path, page_idx)
        while True:
            # Wait out an in-flight eviction flush of this very page.
            while key in self._inflight:
                yield self._inflight[key]
            if key in self._pages:
                # Someone else faulted it back in while we waited.
                self._pages.move_to_end(key)
                return self._pages[key], False
            while len(self._pages) >= self.capacity_pages:
                yield from self._evict_one()
            if key in self._pages or key in self._inflight:
                continue  # appeared (or re-entered eviction) while evicting
            page = _Page(self.page_size)
            self._pages[key] = page
            return page, True

    def _fault_range(
        self, path: str, first_page: int, last_page: int
    ) -> Generator[Event, object, None]:
        """Fault pages ``first_page..last_page`` (inclusive) in from FUSE.

        Contiguous missing pages are requested as one FUSE read per chunk
        piece, but inserted (and later evictable) page by page.
        """
        # Pages of this range may have in-flight eviction flushes; their
        # bytes are not in FUSE yet, so fetching now would resurrect
        # stale data.  Wait for those flushes to land first.
        for page_idx in range(first_page, last_page + 1):
            key = (path, page_idx)
            while key in self._inflight:
                yield self._inflight[key]
        offset = first_page * self.page_size
        size = self.mount.stat_size(path)
        length = min((last_page + 1) * self.page_size, size) - offset
        cache = self._fuse_cache()
        # Each faulted page is one mmap fault serviced through the FUSE
        # daemon: charge the kernel-crossing overhead per page.
        npages = last_page - first_page + 1
        if self.fuse_op_overhead:
            yield self.node.engine.timeout(npages * self.fuse_op_overhead)
        cursor = offset
        end = offset + length
        while cursor < end:
            chunk_index = cursor // self.mount.chunk_size
            chunk_off = cursor - chunk_index * self.mount.chunk_size
            piece = min(self.mount.chunk_size - chunk_off, end - cursor)
            data = yield from cache.read(path, chunk_index, chunk_off, piece)
            for inner in range(0, piece, self.page_size):
                page_idx = (cursor + inner) // self.page_size
                page, created = yield from self._insert(path, page_idx)
                if created:
                    segment = data[inner : inner + self.page_size]
                    page.data[: len(segment)] = segment
            cursor += piece
        self.stats.faulted_bytes += length
        self.metrics.add("pagecache.fault.bytes", length)

    # ------------------------------------------------------------------
    # Public byte-range access
    # ------------------------------------------------------------------
    def read(
        self, path: str, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read bytes, faulting missing pages in from FUSE."""
        self._check(path, offset, length)
        if length == 0:
            return b""
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        # Group contiguous missing pages into ranged faults.
        run_start: int | None = None
        resident = 0
        for page_idx in range(first, last + 1):
            key = (path, page_idx)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.stats.hits += 1
                resident += 1
                if run_start is not None:
                    yield from self._fault_range(path, run_start, page_idx - 1)
                    run_start = None
            else:
                self.stats.misses += 1
                if run_start is None:
                    run_start = page_idx
        if run_start is not None:
            yield from self._fault_range(path, run_start, last)
        yield from self._dram_access(AccessKind.READ, resident * self.page_size)
        # Assemble the requested bytes from resident pages.
        parts: list[bytes] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            page_idx = cursor // self.page_size
            in_page = cursor - page_idx * self.page_size
            piece = min(self.page_size - in_page, end - cursor)
            key = (path, page_idx)
            page = self._pages.get(key)
            if page is None:
                # A range larger than the cache evicted its own head while
                # faulting its tail; refault just this page.
                yield from self._fault_range(path, page_idx, page_idx)
                page = self._pages[key]
            self._pages.move_to_end(key)
            parts.append(bytes(page.data[in_page : in_page + piece]))
            cursor += piece
        self.metrics.add("pagecache.read.bytes", length)
        return b"".join(parts)

    def write(
        self, path: str, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write bytes, dirtying pages (write-allocate, write-back)."""
        self._check(path, offset, len(data))
        if not data:
            return
        cursor = offset
        end = offset + len(data)
        written_resident = 0
        while cursor < end:
            page_idx = cursor // self.page_size
            in_page = cursor - page_idx * self.page_size
            piece = min(self.page_size - in_page, end - cursor)
            key = (path, page_idx)
            page = self._pages.get(key)
            if page is None:
                self.stats.misses += 1
                if piece == self.page_size:
                    # Full-page overwrite: allocate without fetching.
                    page, _created = yield from self._insert(path, page_idx)
                else:
                    yield from self._fault_range(path, page_idx, page_idx)
                    page = self._pages[key]
            else:
                self.stats.hits += 1
                self._pages.move_to_end(key)
            page.data[in_page : in_page + piece] = data[
                cursor - offset : cursor - offset + piece
            ]
            page.dirty = True
            written_resident += piece
            cursor += piece
        yield from self._dram_access(AccessKind.WRITE, written_resident)
        self.metrics.add("pagecache.write.bytes", len(data))

    # ------------------------------------------------------------------
    def drain_path(self, path: str) -> Generator[Event, object, None]:
        """Wait until no eviction flush for ``path`` is in flight."""
        while True:
            pending = [
                event for key, event in self._inflight.items() if key[0] == path
            ]
            if not pending:
                return
            yield pending[0]

    def sync_path(self, path: str) -> Generator[Event, object, None]:
        """Flush all dirty pages of ``path`` to FUSE (msync)."""
        yield from self.drain_path(path)
        for (p, page_idx), page in list(self._pages.items()):
            if p == path and page.dirty:
                yield from self._flush_page(p, page_idx, page)
        yield from self.drain_path(path)

    def drop_path(self, path: str, *, sync: bool = True) -> Generator[Event, object, None]:
        """Flush (optionally) and evict all pages of ``path`` (munmap)."""
        if sync:
            yield from self.sync_path(path)
        else:
            yield from self.drain_path(path)
        for key in [k for k in self._pages if k[0] == path]:
            del self._pages[key]

    def _check(self, path: str, offset: int, length: int) -> None:
        size = self.mount.stat_size(path)
        if offset < 0 or length < 0 or offset + length > size:
            raise MmapError(
                f"page-cache access [{offset}, {offset + length}) outside "
                f"{path!r} of size {size}"
            )
