"""``mmap(2)`` emulation over the FUSE-mounted aggregate store.

An :class:`MmapRegion` is what ``ssdmalloc`` hands back: a byte-addressable
window onto a store-resident file.  Reads and writes resolve through the
node's OS page-cache model; ``MAP_SHARED`` semantics propagate writes to
the underlying file (required for checkpointing, §III-C), while
``MAP_PRIVATE`` keeps modifications in a per-region copy-on-write overlay.
"""

from __future__ import annotations

import enum
from collections.abc import Generator

from repro.devices.base import AccessKind
from repro.errors import MmapError
from repro.mem.pagecache import PageCache
from repro.sim.events import Event


class Protection(enum.IntFlag):
    """mmap protection bits."""

    PROT_READ = 0x1
    PROT_WRITE = 0x2


class MmapRegion:
    """A byte-addressable mapping of a store file into a process.

    Obtained via :meth:`repro.core.NVMalloc.ssdmalloc`; the application
    never sees the backing file name, just this region (the paper's
    ``nvmvar``).
    """

    def __init__(
        self,
        pagecache: PageCache,
        path: str,
        length: int,
        *,
        prot: Protection = Protection.PROT_READ | Protection.PROT_WRITE,
        shared: bool = True,
        offset: int = 0,
    ) -> None:
        size = pagecache.mount.stat_size(path)
        if offset < 0 or length < 0 or offset + length > size:
            raise MmapError(
                f"mapping [{offset}, {offset + length}) outside {path!r} "
                f"of size {size}"
            )
        self.pagecache = pagecache
        self.path = path
        self.length = length
        self.prot = prot
        self.shared = shared
        self.offset = offset
        self.metrics = pagecache.metrics
        self._mapped = True
        # MAP_PRIVATE copy-on-write overlay: page index -> private bytes.
        self._private: dict[int, bytearray] = {}
        self._page = pagecache.page_size
        # Hot-path counters, resolved on first use (snapshot-identical
        # to per-call ``metrics.add``: untouched ones never materialize).
        self._read_counter = None
        self._write_counter = None

    # ------------------------------------------------------------------
    def _check(self, offset: int, length: int, *, write: bool) -> None:
        if not self._mapped:
            raise MmapError(f"region over {self.path!r} has been unmapped")
        if write and not (self.prot & Protection.PROT_WRITE):
            raise MmapError("write to PROT_READ-only mapping")
        if not write and not (self.prot & Protection.PROT_READ):
            raise MmapError("read from PROT_WRITE-only mapping")
        if offset < 0 or length < 0 or offset + length > self.length:
            raise MmapError(
                f"access [{offset}, {offset + length}) outside region of "
                f"{self.length}"
            )

    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> Generator[Event, object, bytearray]:
        """Read ``length`` bytes at region ``offset``.

        Plain function returning a process generator: argument checks and
        accounting happen eagerly, then the delegate generator is handed
        straight to the caller's ``yield from`` (no wrapper frame on the
        per-event resume path).  The result is a fresh caller-owned
        buffer (see :meth:`PageCache.read`).
        """
        self._check(offset, length, write=False)
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "mmap.app_read.bytes"
            )
        counter.total += length
        counter.count += 1
        file_off = self.offset + offset
        if not self._private:
            gen = self.pagecache.read(self.path, file_off, length)
        else:
            gen = self._read_overlaid(file_off, length)
        tracer = self.pagecache._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("mmap", "read", gen, path=self.path, bytes=length)

    def _read_overlaid(
        self, file_off: int, length: int
    ) -> Generator[Event, object, bytearray]:
        if length == 0:
            return bytearray()
        # Private overlay: serve fully-overlaid pages straight from the
        # copy-on-write copies (overlays always hold whole pages) and
        # read only the uncovered runs through the page cache — faulting
        # backing pages that COW already shadows would charge store
        # traffic for bytes the application can never observe.
        page = self._page
        end = file_off + length
        first = file_off // page
        last = (end - 1) // page
        out = bytearray(length)
        private = self._private
        overlay_sizes: list[int] = []
        run_start: int | None = None
        for page_idx in range(first, last + 1):
            page_start = page_idx * page
            lo = max(page_start, file_off)
            hi = min(page_start + page, end)
            overlay = private.get(page_idx)
            if overlay is None:
                if run_start is None:
                    run_start = lo
                continue
            if run_start is not None:
                data = yield from self.pagecache.read(
                    self.path, run_start, lo - run_start
                )
                out[run_start - file_off : lo - file_off] = data
                run_start = None
            out[lo - file_off : hi - file_off] = memoryview(overlay)[
                lo - page_start : hi - page_start
            ]
            overlay_sizes.append(hi - lo)
        if run_start is not None:
            data = yield from self.pagecache.read(
                self.path, run_start, end - run_start
            )
            out[run_start - file_off :] = data
        if overlay_sizes:
            # Overlaid bytes never touch the backing file, but serving
            # them is still a DRAM copy: one cohort access for the whole
            # run of overlaid page segments.
            yield from self.pagecache.node.dram.access_run(
                AccessKind.READ, overlay_sizes
            )
        return out

    def write(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write ``data`` at region ``offset``.

        Plain function returning a process generator (see :meth:`read`).
        """
        self._check(offset, len(data), write=True)
        counter = self._write_counter
        if counter is None:
            counter = self._write_counter = self.metrics.counter(
                "mmap.app_write.bytes"
            )
        counter.total += len(data)
        counter.count += 1
        file_off = self.offset + offset
        if self.shared:
            gen = self.pagecache.write(self.path, file_off, data)
        else:
            gen = self._write_private(file_off, data)
        tracer = self.pagecache._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("mmap", "write", gen, path=self.path, bytes=len(data))

    def _write_private(
        self, file_off: int, data: bytes
    ) -> Generator[Event, object, None]:
        # MAP_PRIVATE: copy-on-write into the overlay; the file is never
        # modified.
        cursor = file_off
        end = file_off + len(data)
        piece_sizes: list[int] = []
        while cursor < end:
            page_idx = cursor // self._page
            in_page = cursor - page_idx * self._page
            piece = min(self._page - in_page, end - cursor)
            overlay = self._private.get(page_idx)
            if overlay is None:
                page_start = page_idx * self._page
                span = min(self._page, self.pagecache.mount.stat_size(self.path) - page_start)
                base = yield from self.pagecache.read(self.path, page_start, span)
                overlay = bytearray(self._page)
                overlay[: len(base)] = base
                self._private[page_idx] = overlay
            overlay[in_page : in_page + piece] = data[
                cursor - file_off : cursor - file_off + piece
            ]
            piece_sizes.append(piece)
            cursor += piece
        # One cohort DRAM access for the whole run of written page pieces
        # (sums back to len(data): bit-identical to the single access).
        yield from self.pagecache.mount.node.dram.access_run(
            AccessKind.WRITE, piece_sizes
        )

    # ------------------------------------------------------------------
    def msync(self) -> Generator[Event, object, None]:
        """Flush dirty pages of a shared mapping to the FUSE layer."""
        if not self._mapped:
            raise MmapError(f"region over {self.path!r} has been unmapped")
        if self.shared:
            yield from self.pagecache.sync_path(self.path)

    def munmap(self) -> Generator[Event, object, None]:
        """Tear the mapping down (shared mappings sync first)."""
        if not self._mapped:
            return
        yield from self.pagecache.drop_path(self.path, sync=self.shared)
        self._private.clear()
        self._mapped = False

    @property
    def mapped(self) -> bool:
        """True until ``munmap`` tears the mapping down."""
        return self._mapped

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        kind = "shared" if self.shared else "private"
        return f"<MmapRegion {self.path} len={self.length} {kind}>"
