"""Memory-mapping emulation.

CPython cannot intercept page faults, so the byte-addressability the paper
gets from ``mmap(2)`` is emulated: an :class:`MmapRegion` resolves byte
accesses through a per-node OS page-cache model (4 KB pages, LRU,
write-back) onto the FUSE layer, reproducing the paper's cache hierarchy
"mmap/page cache -> FUSE chunk cache -> aggregate store" and its byte-flow
accounting (Table IV's app -> FUSE -> SSD columns).
"""

from repro.mem.pagecache import PageCache, PageCacheStats
from repro.mem.mmap import MmapRegion, Protection
from repro.mem.swap import SwapSpace, SwappedArray

__all__ = [
    "MmapRegion",
    "PageCache",
    "PageCacheStats",
    "Protection",
    "SwapSpace",
    "SwappedArray",
]
