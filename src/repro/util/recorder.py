"""Lightweight metric collection.

Every layer of the stack (devices, links, caches, store) accounts its
traffic through a shared :class:`MetricsRecorder` so that experiments can
report the paper's Table IV / Table VII style byte-flow numbers without
instrumenting call sites twice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(slots=True)
class Counter:
    """A monotonically increasing value with an operation count."""

    total: float = 0.0
    count: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Add ``amount`` and bump the operation count."""
        self.total += amount
        self.count += 1

    @property
    def mean(self) -> float:
        """Average amount per operation (0 when untouched)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TimeSeries:
    """Timestamped samples of a scalar metric."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record one timestamped sample."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        """The most recent sample's value."""
        if not self.values:
            raise IndexError("empty time series")
        return self.values[-1]


class MetricsRecorder:
    """Namespace of named counters and time series.

    Counter names use dotted paths, e.g. ``"fuse.read.bytes_from_store"``.
    Unknown names spring into existence on first use, so call sites never
    need registration boilerplate.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = defaultdict(Counter)
        self._series: dict[str, TimeSeries] = defaultdict(TimeSeries)

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        return self._counters[name]

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        counter = self._counters[name]
        counter.total += amount
        counter.count += 1

    def value(self, name: str) -> float:
        """Current total of counter ``name`` (0 when never touched)."""
        if name in self._counters:
            return self._counters[name].total
        return 0.0

    def count(self, name: str) -> int:
        """Operation count of counter ``name``."""
        if name in self._counters:
            return self._counters[name].count
        return 0

    def sample(self, name: str, time: float, value: float) -> None:
        """Append a timestamped sample to series ``name``."""
        self._series[name].append(time, value)

    def series(self, name: str) -> TimeSeries:
        """The time series registered under ``name``."""
        return self._series[name]

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """All counter totals whose names start with ``prefix``."""
        return {
            name: counter.total
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Drop all counters and series."""
        self._counters.clear()
        self._series.clear()
