"""Lightweight metric collection.

Every layer of the stack (devices, links, caches, store) accounts its
traffic through a shared :class:`MetricsRecorder` so that experiments can
report the paper's Table IV / Table VII style byte-flow numbers without
instrumenting call sites twice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import MetricsError


@dataclass(slots=True)
class Counter:
    """A monotonically increasing value with an operation count."""

    total: float = 0.0
    count: int = 0

    def add(self, amount: float = 1.0) -> None:
        """Add ``amount`` and bump the operation count."""
        self.total += amount
        self.count += 1

    @property
    def mean(self) -> float:
        """Average amount per operation (0 when untouched)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TimeSeries:
    """Timestamped samples of a scalar metric.

    With ``max_samples`` set, memory stays bounded no matter how long
    the run: once the buffer fills, every other retained sample is
    dropped and the acceptance stride doubles, so the kept samples stay
    uniformly spread over the whole recording.  The decimation is purely
    a function of the append sequence — no randomness — so two identical
    runs retain identical samples.
    """

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    max_samples: int | None = None
    _stride: int = field(default=1, repr=False)
    _skip: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 2:
            raise MetricsError(
                f"max_samples must be >= 2, got {self.max_samples}"
            )

    def append(self, time: float, value: float) -> None:
        """Record one timestamped sample (possibly decimated away)."""
        if self.max_samples is not None:
            if self._skip:
                self._skip -= 1
                return
            self._skip = self._stride - 1
            self.times.append(time)
            self.values.append(value)
            if len(self.times) >= self.max_samples:
                del self.times[1::2]
                del self.values[1::2]
                self._stride *= 2
                self._skip = self._stride - 1
            return
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        """The most recent retained sample's value."""
        if not self.values:
            raise MetricsError("empty time series")
        return self.values[-1]


class MetricsRecorder:
    """Namespace of named counters and time series.

    Counter names use dotted paths, e.g. ``"fuse.read.bytes_from_store"``.
    Unknown names spring into existence on first use, so call sites never
    need registration boilerplate.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = defaultdict(Counter)
        self._series: dict[str, TimeSeries] = defaultdict(TimeSeries)

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        return self._counters[name]

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        counter = self._counters[name]
        counter.total += amount
        counter.count += 1

    def value(self, name: str) -> float:
        """Current total of counter ``name`` (0 when never touched)."""
        if name in self._counters:
            return self._counters[name].total
        return 0.0

    def count(self, name: str) -> int:
        """Operation count of counter ``name``."""
        if name in self._counters:
            return self._counters[name].count
        return 0

    def sample(self, name: str, time: float, value: float) -> None:
        """Append a timestamped sample to series ``name``."""
        self._series[name].append(time, value)

    def series(self, name: str, *, max_samples: int | None = None) -> TimeSeries:
        """The time series registered under ``name``.

        ``max_samples`` bounds the series (see :class:`TimeSeries`); it
        only takes effect when this call creates the series, so the first
        caller decides the budget.
        """
        if max_samples is not None and name not in self._series:
            series = self._series[name] = TimeSeries(max_samples=max_samples)
            return series
        return self._series[name]

    def snapshot(self, prefix: str = "") -> dict[str, float]:
        """All counter totals whose names start with ``prefix``."""
        return {
            name: counter.total
            for name, counter in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Drop all counters and series."""
        self._counters.clear()
        self._series.clear()
