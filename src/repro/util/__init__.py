"""Shared helpers: byte-size units, interval sets, metrics, table rendering."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    KB,
    MB,
    GB,
    TB,
    format_size,
    format_rate,
    format_time,
    parse_size,
)
from repro.util.intervals import IntervalSet
from repro.util.recorder import Counter, MetricsRecorder, TimeSeries
from repro.util.tables import render_table

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
    "format_size",
    "format_rate",
    "format_time",
    "parse_size",
    "IntervalSet",
    "Counter",
    "MetricsRecorder",
    "TimeSeries",
    "render_table",
]
