"""Byte-size units and human-readable formatting.

The paper mixes decimal vendor units (MB/s device bandwidth, Table I) and
binary software units (256 KB chunks, 4 KB pages, 64 MB cache).  We expose
both and keep the distinction explicit: ``KiB``-family constants are binary,
``KB``-family are decimal.
"""

from __future__ import annotations

import re

# Binary (software) units -- chunk/page/cache sizes.
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

# Decimal (vendor) units -- device bandwidths and capacities in Table I.
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB
TB: int = 1000 * GB

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(B|KB|MB|GB|TB|KiB|MiB|GiB|TiB)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    None: 1,
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}


def parse_size(text: str | int) -> int:
    """Parse a human size like ``"256KiB"`` or ``"1.5GB"`` into bytes.

    Integers pass through unchanged.  Raises :class:`ValueError` for
    malformed input or negative values.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    unit = match.group(2)
    factor = _UNIT_FACTORS[unit.lower() if unit else None]
    result = value * factor
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def format_size(nbytes: float, *, binary: bool = True) -> str:
    """Render a byte count with an appropriate unit suffix."""
    if nbytes < 0:
        return "-" + format_size(-nbytes, binary=binary)
    step = 1024.0 if binary else 1000.0
    suffixes = (
        ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
        if binary
        else ["B", "KB", "MB", "GB", "TB", "PB"]
    )
    value = float(nbytes)
    for suffix in suffixes:
        if value < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)}{suffix}"
            return f"{value:.2f}{suffix}"
        value /= step
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a bandwidth in decimal vendor units (matching Table I)."""
    return format_size(bytes_per_second, binary=False) + "/s"


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate unit (ns .. s)."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
