"""Half-open integer interval sets on sorted numpy endpoint arrays.

Used for dirty-byte tracking inside cached chunks and for free-extent
accounting.  Intervals are ``[start, stop)`` with ``start < stop``; the set
keeps them sorted, disjoint, and coalesced.

The representation is a pair of parallel ``int64`` arrays (``_starts``,
``_stops``) over-allocated capacity-doubling style, with ``_n`` live
entries.  Single-interval mutations keep scalar fast paths for the
overwhelmingly common shapes (empty set, append-at-end, grow-last) and
fall back to ``numpy.searchsorted`` plus one slice splice for the general
case; ``add_many``/``gaps_many`` process whole batches with sort +
``maximum.accumulate`` coalescing so run-batched callers pay one array
pass instead of N bisect rounds.  All query methods return plain python
ints — endpoints feed byte counters and JSON reports, which must never
see ``numpy.int64``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

_MIN_CAP = 4

#: Shared zero-capacity endpoint pair: a fresh set points here until its
#: first mutation, so constructing an IntervalSet allocates nothing.
#: (Never written to — every write happens after ``_grow`` swapped in a
#: private buffer.)
_EMPTY = np.empty(0, dtype=np.int64)


class IntervalSet:
    """A mutable set of disjoint half-open integer intervals.

    Supports union (``add``/``add_many``), subtraction (``discard``),
    intersection queries, and total-length accounting.  All operations keep
    the internal representation sorted and coalesced, so iteration yields
    canonical intervals.
    """

    __slots__ = ("_starts", "_stops", "_n")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._starts: np.ndarray = _EMPTY
        self._stops: np.ndarray = _EMPTY
        self._n = 0
        for start, stop in intervals:
            self.add(start, stop)

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = len(self._starts) or _MIN_CAP
        while cap < need:
            cap *= 2
        starts = np.empty(cap, dtype=np.int64)
        stops = np.empty(cap, dtype=np.int64)
        n = self._n
        starts[:n] = self._starts[:n]
        stops[:n] = self._stops[:n]
        self._starts = starts
        self._stops = stops

    def _splice(
        self, lo: int, hi: int, starts: Sequence[int], stops: Sequence[int]
    ) -> None:
        """Replace entries ``[lo:hi]`` with the given endpoint lists."""
        n = self._n
        k = len(starts)
        new_n = n - (hi - lo) + k
        if new_n > len(self._starts):
            self._grow(new_n)
        sa, so = self._starts, self._stops
        if hi != lo + k and hi < n:
            sa[lo + k : new_n] = sa[hi:n]
            so[lo + k : new_n] = so[hi:n]
        for j in range(k):
            sa[lo + j] = starts[j]
            so[lo + j] = stops[j]
        self._n = new_n

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, start: int, stop: int) -> None:
        """Union ``[start, stop)`` into the set (no-op when empty)."""
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        if start == stop:
            return
        n = self._n
        sa, so = self._starts, self._stops
        if n:
            last_stop = so[n - 1]
            if start > last_stop:  # disjoint append past the end
                if n == len(sa):
                    self._grow(n + 1)
                    sa, so = self._starts, self._stops
                sa[n] = start
                so[n] = stop
                self._n = n + 1
                return
            if start >= sa[n - 1]:  # touches only the last interval
                if stop > last_stop:
                    so[n - 1] = stop
                return
            # General path: the window of existing intervals that touch
            # [start, stop) — existing.stop >= start and
            # existing.start <= stop (adjacent intervals coalesce).
            lo = int(np.searchsorted(so[:n], start, side="left"))
            hi = int(np.searchsorted(sa[:n], stop, side="right"))
            if lo < hi:
                if sa[lo] < start:
                    start = int(sa[lo])
                if so[hi - 1] > stop:
                    stop = int(so[hi - 1])
            self._splice(lo, hi, (start,), (stop,))
        else:
            if not len(sa):
                self._grow(1)
                sa, so = self._starts, self._stops
            sa[0] = start
            so[0] = stop
            self._n = 1

    def add_many(
        self,
        starts: Iterable[int] | np.ndarray,
        stops: Iterable[int] | np.ndarray,
    ) -> None:
        """Union a whole batch of intervals in one vectorized pass.

        Equivalent to calling :meth:`add` per pair but O((n+k) log(n+k))
        total: concatenate with the existing endpoints, sort by start, and
        coalesce with a running-max scan (adjacent intervals merge, empty
        ones drop out).
        """
        s = np.asarray(starts, dtype=np.int64)
        t = np.asarray(stops, dtype=np.int64)
        if s.shape != t.shape or s.ndim != 1:
            raise ValueError("starts/stops must be parallel 1-d arrays")
        if np.any(s > t):
            bad = int(np.argmax(s > t))
            raise ValueError(f"invalid interval [{int(s[bad])}, {int(t[bad])})")
        keep = s < t  # drop empties
        if not np.all(keep):
            s, t = s[keep], t[keep]
        if not len(s):
            return
        n = self._n
        if n:
            s = np.concatenate((self._starts[:n], s))
            t = np.concatenate((self._stops[:n], t))
        order = np.argsort(s, kind="stable")
        s = s[order]
        t = t[order]
        reach = np.maximum.accumulate(t)
        first = np.empty(len(s), dtype=bool)
        first[0] = True
        first[1:] = s[1:] > reach[:-1]  # strict: adjacent still coalesces
        idx = np.flatnonzero(first)
        merged_starts = s[idx]
        last = np.empty(len(idx), dtype=np.int64)
        last[:-1] = idx[1:] - 1
        last[-1] = len(s) - 1
        merged_stops = reach[last]
        new_n = len(idx)
        if new_n > len(self._starts):
            self._grow(new_n)
        self._starts[:new_n] = merged_starts
        self._stops[:new_n] = merged_stops
        self._n = new_n

    def discard(self, start: int, stop: int) -> None:
        """Subtract ``[start, stop)`` from the set."""
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        n = self._n
        if start == stop or not n:
            return
        sa, so = self._starts, self._stops
        # Overlapping (strictly, not merely adjacent) intervals.
        lo = int(np.searchsorted(so[:n], start, side="right"))
        hi = int(np.searchsorted(sa[:n], stop, side="left"))
        if lo >= hi:
            return
        new_starts: list[int] = []
        new_stops: list[int] = []
        if sa[lo] < start:
            new_starts.append(int(sa[lo]))
            new_stops.append(start)
        if so[hi - 1] > stop:
            new_starts.append(stop)
            new_stops.append(int(so[hi - 1]))
        self._splice(lo, hi, new_starts, new_stops)

    def clear(self) -> None:
        """Remove all intervals."""
        self._n = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, int]]:
        n = self._n
        return iter(
            zip(self._starts[:n].tolist(), self._stops[:n].tolist())
        )

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        n = self._n
        if n != other._n:
            return False
        return bool(
            np.array_equal(self._starts[:n], other._starts[:n])
            and np.array_equal(self._stops[:n], other._stops[:n])
        )

    def __repr__(self) -> str:
        spans = ", ".join(f"[{a}, {b})" for a, b in self)
        return f"IntervalSet({spans})"

    def total(self) -> int:
        """Total number of integers covered."""
        n = self._n
        if not n:
            return 0
        return int(np.sum(self._stops[:n] - self._starts[:n]))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only views of the live ``(starts, stops)`` endpoint arrays.

        For vectorized consumers; the views alias internal storage and are
        invalidated by any mutation.
        """
        n = self._n
        return self._starts[:n], self._stops[:n]

    def contains(self, point: int) -> bool:
        """True when ``point`` lies inside some interval."""
        n = self._n
        if not n:
            return False
        idx = int(np.searchsorted(self._starts[:n], point, side="right")) - 1
        return idx >= 0 and point < self._stops[idx]

    def overlaps(self, start: int, stop: int) -> bool:
        """True when ``[start, stop)`` intersects the set."""
        n = self._n
        if start >= stop or not n:
            return False
        lo = int(np.searchsorted(self._stops[:n], start, side="right"))
        return lo < n and self._starts[lo] < stop

    def _window(self, start: int, stop: int) -> tuple[int, int]:
        """Index window of intervals strictly overlapping ``[start, stop)``."""
        n = self._n
        lo = int(np.searchsorted(self._stops[:n], start, side="right"))
        hi = int(np.searchsorted(self._starts[:n], stop, side="left"))
        return lo, hi

    def intersection(self, start: int, stop: int) -> list[tuple[int, int]]:
        """The parts of ``[start, stop)`` covered by the set, in order."""
        if start >= stop or not self._n:
            return []
        lo, hi = self._window(start, stop)
        if lo >= hi:
            return []
        if hi - lo == 1:  # single overlapping interval: stay scalar
            a = int(self._starts[lo])
            b = int(self._stops[lo])
            return [(a if a > start else start, b if b < stop else stop)]
        a = np.maximum(self._starts[lo:hi], start)
        b = np.minimum(self._stops[lo:hi], stop)
        return list(zip(a.tolist(), b.tolist()))

    def gaps(self, start: int, stop: int) -> list[tuple[int, int]]:
        """The parts of ``[start, stop)`` NOT covered by the set, in order."""
        if start >= stop:
            return []
        if not self._n:
            return [(start, stop)]
        lo, hi = self._window(start, stop)
        if lo >= hi:
            return [(start, stop)]
        # Gap edges: query start, the covered edges clipped to the query,
        # and the query stop; non-empty [edge[2i], edge[2i+1]) pairs remain.
        a = self._starts[lo:hi]
        b = self._stops[lo:hi]
        result: list[tuple[int, int]] = []
        cursor = start
        for i in range(hi - lo):
            ai = int(a[i])
            if ai > cursor:
                result.append((cursor, ai))
            cursor = int(b[i])
        if cursor < stop:
            result.append((cursor, stop))
        return result

    def gaps_many(
        self, ranges: Iterable[tuple[int, int]]
    ) -> list[list[tuple[int, int]]]:
        """Per-range :meth:`gaps`, one searchsorted batch for all ranges."""
        pairs = list(ranges)
        if not pairs:
            return []
        n = self._n
        if not n:
            return [[(a, b)] if a < b else [] for a, b in pairs]
        qs = np.fromiter(
            (p[0] for p in pairs), dtype=np.int64, count=len(pairs)
        )
        qe = np.fromiter(
            (p[1] for p in pairs), dtype=np.int64, count=len(pairs)
        )
        los = np.searchsorted(self._stops[:n], qs, side="right")
        his = np.searchsorted(self._starts[:n], qe, side="left")
        out: list[list[tuple[int, int]]] = []
        sa, so = self._starts, self._stops
        for k in range(len(pairs)):
            start, stop = pairs[k]
            if start >= stop:
                out.append([])
                continue
            lo, hi = int(los[k]), int(his[k])
            if lo >= hi:
                out.append([(start, stop)])
                continue
            result: list[tuple[int, int]] = []
            cursor = start
            for i in range(lo, hi):
                ai = int(sa[i])
                if ai > cursor:
                    result.append((cursor, ai))
                cursor = int(so[i])
            if cursor < stop:
                result.append((cursor, stop))
            out.append(result)
        return out

    def covers(self, start: int, stop: int) -> bool:
        """True when every point of ``[start, stop)`` is in the set."""
        if start >= stop:
            return True
        n = self._n
        if not n:
            return False
        idx = int(np.searchsorted(self._starts[:n], start, side="right")) - 1
        return idx >= 0 and self._stops[idx] >= stop

    def copy(self) -> "IntervalSet":
        """A deep copy of this set."""
        clone = IntervalSet()
        n = self._n
        if n > len(clone._starts):
            clone._grow(n)
        clone._starts[:n] = self._starts[:n]
        clone._stops[:n] = self._stops[:n]
        clone._n = n
        return clone
