"""Half-open integer interval sets.

Used for dirty-byte tracking inside cached chunks and for free-extent
accounting.  Intervals are ``[start, stop)`` with ``start < stop``; the set
keeps them sorted, disjoint, and coalesced.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator


class IntervalSet:
    """A mutable set of disjoint half-open integer intervals.

    Supports union (``add``), subtraction (``discard``), intersection
    queries, and total-length accounting.  All operations keep the internal
    representation sorted and coalesced, so iteration yields canonical
    intervals.
    """

    __slots__ = ("_starts", "_stops")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._starts: list[int] = []
        self._stops: list[int] = []
        for start, stop in intervals:
            self.add(start, stop)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, start: int, stop: int) -> None:
        """Union ``[start, stop)`` into the set (no-op when empty)."""
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        if start == stop:
            return
        # Find the window of existing intervals that touch [start, stop).
        # An interval touches if existing.stop >= start and
        # existing.start <= stop (adjacent intervals coalesce).
        lo = bisect.bisect_left(self._stops, start)
        hi = bisect.bisect_right(self._starts, stop)
        if lo < hi:
            start = min(start, self._starts[lo])
            stop = max(stop, self._stops[hi - 1])
        self._starts[lo:hi] = [start]
        self._stops[lo:hi] = [stop]

    def discard(self, start: int, stop: int) -> None:
        """Subtract ``[start, stop)`` from the set."""
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        if start == stop or not self._starts:
            return
        # Overlapping (strictly, not merely adjacent) intervals.
        lo = bisect.bisect_right(self._stops, start)
        hi = bisect.bisect_left(self._starts, stop)
        if lo >= hi:
            return
        new_starts: list[int] = []
        new_stops: list[int] = []
        if self._starts[lo] < start:
            new_starts.append(self._starts[lo])
            new_stops.append(start)
        if self._stops[hi - 1] > stop:
            new_starts.append(stop)
            new_stops.append(self._stops[hi - 1])
        self._starts[lo:hi] = new_starts
        self._stops[lo:hi] = new_stops

    def clear(self) -> None:
        """Remove all intervals."""
        self._starts.clear()
        self._stops.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self._starts, self._stops))

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._stops == other._stops

    def __repr__(self) -> str:
        spans = ", ".join(f"[{a}, {b})" for a, b in self)
        return f"IntervalSet({spans})"

    def total(self) -> int:
        """Total number of integers covered."""
        return sum(b - a for a, b in self)

    def contains(self, point: int) -> bool:
        """True when ``point`` lies inside some interval."""
        idx = bisect.bisect_right(self._starts, point) - 1
        return idx >= 0 and point < self._stops[idx]

    def overlaps(self, start: int, stop: int) -> bool:
        """True when ``[start, stop)`` intersects the set."""
        if start >= stop:
            return False
        lo = bisect.bisect_right(self._stops, start)
        return lo < len(self._starts) and self._starts[lo] < stop

    def intersection(self, start: int, stop: int) -> list[tuple[int, int]]:
        """The parts of ``[start, stop)`` covered by the set, in order."""
        result: list[tuple[int, int]] = []
        if start >= stop:
            return result
        lo = bisect.bisect_right(self._stops, start)
        for i in range(lo, len(self._starts)):
            a, b = self._starts[i], self._stops[i]
            if a >= stop:
                break
            result.append((max(a, start), min(b, stop)))
        return result

    def gaps(self, start: int, stop: int) -> list[tuple[int, int]]:
        """The parts of ``[start, stop)`` NOT covered by the set, in order."""
        result: list[tuple[int, int]] = []
        cursor = start
        for a, b in self.intersection(start, stop):
            if a > cursor:
                result.append((cursor, a))
            cursor = b
        if cursor < stop:
            result.append((cursor, stop))
        return result

    def covers(self, start: int, stop: int) -> bool:
        """True when every point of ``[start, stop)`` is in the set."""
        if start >= stop:
            return True
        inner = self.intersection(start, stop)
        return len(inner) == 1 and inner[0] == (start, stop)

    def copy(self) -> "IntervalSet":
        """A deep copy of this set."""
        clone = IntervalSet()
        clone._starts = list(self._starts)
        clone._stops = list(self._stops)
        return clone
