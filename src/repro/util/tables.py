"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them as aligned monospace tables.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
