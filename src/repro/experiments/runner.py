"""Testbed assembly: engine + HAL cluster + PFS + job for one run.

Every experiment run gets a *fresh* testbed so metric counters, device
wear, and cache state never leak between configurations.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro import obs
from repro.cluster.cluster import Cluster
from repro.cluster.hal import make_hal_cluster
from repro.experiments.configs import ExperimentScale
from repro.parallel.job import Job, JobConfig
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.engine import Engine

#: Active trackers; every new Testbed registers with each (see
#: :func:`track_testbeds`).
_TRACKERS: list["TestbedTracker"] = []


class TestbedTracker:
    """Collects every :class:`Testbed` built while its context is active."""

    def __init__(self) -> None:
        self.testbeds: list["Testbed"] = []


@contextmanager
def track_testbeds() -> Iterator[TestbedTracker]:
    """Record, in construction order, every Testbed built in the block.

    The orchestrator wraps each experiment driver in this context so it can
    snapshot byte-flow counters from every testbed the driver assembled —
    drivers build testbeds internally and never hand them back.
    """
    tracker = TestbedTracker()
    _TRACKERS.append(tracker)
    try:
        yield tracker
    finally:
        _TRACKERS.remove(tracker)


class Testbed:
    """A freshly assembled simulated HAL testbed at one experiment scale."""

    __test__ = False  # not a pytest collection target despite the name

    #: Process-wide count of testbeds ever assembled.  The warm-cache
    #: acceptance check asserts this does not move on a fully cached run.
    constructions = 0

    def __init__(self, scale: ExperimentScale) -> None:
        Testbed.constructions += 1
        for tracker in _TRACKERS:
            tracker.testbeds.append(self)
        self.scale = scale
        self.engine = Engine()
        # None unless tracing is on, which keeps every instrumented call
        # site on its raw fast path.
        self.engine.tracer = obs.new_tracer_if_enabled(self.engine)
        self.cluster: Cluster = make_hal_cluster(self.engine, scale.hal_config())
        self.pfs = ParallelFileSystem(
            self.engine,
            self.cluster.network,
            num_servers=scale.pfs_servers,
            metrics=self.cluster.metrics,
        )

    def job(
        self,
        procs_per_node: int,
        num_nodes: int,
        num_benefactors: int,
        *,
        remote_ssd: bool = False,
        **overrides,
    ) -> Job:
        """A job in the paper's ``x:y:z`` notation on this testbed."""
        config = JobConfig(
            procs_per_node=procs_per_node,
            num_nodes=num_nodes,
            num_benefactors=num_benefactors,
            remote_ssd=remote_ssd,
            fuse_cache_bytes=overrides.pop("fuse_cache_bytes", self.scale.fuse_cache),
            page_cache_bytes=overrides.pop("page_cache_bytes", self.scale.page_cache),
            benefactor_contribution=overrides.pop(
                "benefactor_contribution", self.scale.benefactor_contribution
            ),
            **overrides,
        )
        return Job(self.cluster, config)


def fresh_job(
    scale: ExperimentScale,
    procs_per_node: int,
    num_nodes: int,
    num_benefactors: int,
    *,
    remote_ssd: bool = False,
    **overrides,
) -> tuple[Testbed, Job]:
    """Convenience: a new testbed plus a job on it."""
    testbed = Testbed(scale)
    job = testbed.job(
        procs_per_node,
        num_nodes,
        num_benefactors,
        remote_ssd=remote_ssd,
        **overrides,
    )
    return testbed, job
