"""Testbed assembly: engine + HAL cluster + PFS + job for one run.

Every experiment run gets a *fresh* testbed so metric counters, device
wear, and cache state never leak between configurations.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.hal import make_hal_cluster
from repro.experiments.configs import ExperimentScale
from repro.parallel.job import Job, JobConfig
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.engine import Engine


class Testbed:
    """A freshly assembled simulated HAL testbed at one experiment scale."""

    __test__ = False  # not a pytest collection target despite the name

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self.engine = Engine()
        self.cluster: Cluster = make_hal_cluster(self.engine, scale.hal_config())
        self.pfs = ParallelFileSystem(
            self.engine,
            self.cluster.network,
            num_servers=scale.pfs_servers,
            metrics=self.cluster.metrics,
        )

    def job(
        self,
        procs_per_node: int,
        num_nodes: int,
        num_benefactors: int,
        *,
        remote_ssd: bool = False,
        **overrides,
    ) -> Job:
        """A job in the paper's ``x:y:z`` notation on this testbed."""
        config = JobConfig(
            procs_per_node=procs_per_node,
            num_nodes=num_nodes,
            num_benefactors=num_benefactors,
            remote_ssd=remote_ssd,
            fuse_cache_bytes=overrides.pop("fuse_cache_bytes", self.scale.fuse_cache),
            page_cache_bytes=overrides.pop("page_cache_bytes", self.scale.page_cache),
            benefactor_contribution=overrides.pop(
                "benefactor_contribution", self.scale.benefactor_contribution
            ),
            **overrides,
        )
        return Job(self.cluster, config)


def fresh_job(
    scale: ExperimentScale,
    procs_per_node: int,
    num_nodes: int,
    num_benefactors: int,
    *,
    remote_ssd: bool = False,
    **overrides,
) -> tuple[Testbed, Job]:
    """Convenience: a new testbed plus a job on it."""
    testbed = Testbed(scale)
    job = testbed.job(
        procs_per_node,
        num_nodes,
        num_benefactors,
        remote_ssd=remote_ssd,
        **overrides,
    )
    return testbed, job
