"""Table drivers (Tables I, III-VII) plus the checkpoint experiment."""

from __future__ import annotations

from repro.devices.specs import DEVICE_CATALOG
from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.util.units import MiB, format_rate, format_size, format_time
from repro.workloads.checkpoint_wl import (
    CheckpointWorkloadConfig,
    run_checkpoint_workload,
)
from repro.workloads.matmul import MatmulConfig, run_matmul
from repro.workloads.quicksort import SortConfig, run_quicksort
from repro.workloads.randwrite import RandWriteConfig, run_randwrite
from repro.workloads.stream import StreamConfig, StreamKernel, run_stream


# ----------------------------------------------------------------------
def table1() -> ExperimentReport:
    """Device characteristics (the catalog the models are seeded from)."""
    report = ExperimentReport(
        experiment="Table I",
        title="Device characteristics (October 2011 market data)",
        headers=["Device", "Type", "Interface", "Read", "Write", "Latency", "Capacity", "Cost ($)"],
    )
    for spec in DEVICE_CATALOG.values():
        report.add_row(
            spec.name, spec.kind.upper(), spec.interface,
            format_rate(spec.read_bw), format_rate(spec.write_bw),
            format_time(spec.latency), format_size(spec.capacity, binary=False),
            spec.cost_usd,
        )
    report.claim(
        "DRAM is >= 8.53x faster than the fastest PCIe flash card",
        f"DDR3-1600 read / ioDrive read = "
        f"{DEVICE_CATALOG['DDR3-1600'].read_bw / DEVICE_CATALOG['Fusion IO ioDrive Duo'].read_bw:.2f}x",
    )
    return report


# ----------------------------------------------------------------------
def table3(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """STREAM with vs without NVMalloc, array C on the local SSD.

    The NVMalloc path should *win*: its 256 KB chunk fetches into the
    FUSE cache amortize device latency better than the kernel's 128 KB
    readahead on a local file system.
    """
    report = ExperimentReport(
        experiment="Table III",
        title="STREAM bandwidth (MB/s-equivalent) with C on local SSD",
        headers=["Kernel", "w/ NVMalloc", "w/o NVMalloc", "NVMalloc gain %"],
    )
    gains: list[float] = []
    # Same per-array:DRAM ratio and uncalibrated cores as Fig. 2.
    stream_scale = scale.with_(
        dram_per_node=scale.stream_elements * 8 * 4, cpu_slowdown=1.0
    )
    for kernel in (
        StreamKernel.COPY, StreamKernel.SCALE, StreamKernel.ADD, StreamKernel.TRIAD
    ):
        def one(placement: str) -> tuple[float, bool]:
            testbed = Testbed(stream_scale)
            job = testbed.job(8, 1, 1)
            result = run_stream(
                job,
                StreamConfig(
                    elements=scale.stream_elements,
                    kernel=kernel,
                    iterations=scale.stream_iterations,
                    placement={"A": "dram", "B": "dram", "C": placement},
                    block_bytes=scale.stream_block,
                    raw_cache_bytes=scale.fuse_cache + scale.page_cache,
                ),
            )
            return result.bandwidth, result.verified

        with_bw, ok_w = one("nvm")
        without_bw, ok_o = one("raw-ssd")
        report.verified &= ok_w and ok_o
        gain = 100.0 * (with_bw / without_bw - 1.0)
        gains.append(gain)
        report.add_row(kernel.name, with_bw / 1e6, without_bw / 1e6, gain)
    report.claim(
        "NVMalloc improves on raw local-SSD access thanks to FUSE-level "
        "read-ahead caching (e.g. COPY 78.17 vs 64.24 MB/s, +21.7%)",
        f"gain {min(gains):.1f}%..{max(gains):.1f}%: our model reproduces "
        "the win for write-dominated kernels (dirty-page batching); for "
        "read-dominated kernels the single-threaded FUSE daemon costs more "
        "than chunk read-ahead recovers (see EXPERIMENTS.md)",
    )
    return report


# ----------------------------------------------------------------------
def table4(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Bytes exchanged app -> FUSE -> SSD during MM compute (L-SSD 8:16:16)."""
    report = ExperimentReport(
        experiment="Table IV",
        title="Data exchanged between application, FUSE and SSD store (GB-scaled: MiB)",
        headers=[
            "Access pattern of B", "Aggregated accesses to B",
            "Request to FUSE", "Request to SSD",
        ],
    )
    flows: dict[str, dict[str, float]] = {}
    for order in ("row", "column"):
        testbed = Testbed(scale)
        job = testbed.job(8, 16, 16)
        result = run_matmul(
            job,
            testbed.pfs,
            MatmulConfig(
                n=scale.matrix_n, tile=scale.matrix_tile,
                b_placement="nvm", access_order=order,
            ),
        )
        report.verified &= result.verified
        flows[order] = result.compute_flows
        report.add_row(
            f"{order.capitalize()}-major",
            result.compute_flows["app_to_b"] / MiB,
            result.compute_flows["request_to_fuse"] / MiB,
            result.compute_flows["request_to_ssd"] / MiB,
        )
    row_ssd = flows["row"]["request_to_ssd"]
    col_ssd = flows["column"]["request_to_ssd"]
    report.claim(
        "with good locality (row-major) the caches absorb almost all "
        "accesses; column-major multiplies FUSE and SSD traffic",
        f"SSD traffic: column/row = {col_ssd / max(row_ssd, 1):.1f}x",
    )
    return report


# ----------------------------------------------------------------------
def table5(
    scale: ExperimentScale = SMALL,
    tiles: tuple[int, ...] = (16, 32, 64, 128),
    config: tuple[int, int, int, bool] = (8, 16, 16, False),
) -> ExperimentReport:
    """MM compute time vs tile size, row- and column-major."""
    report = ExperimentReport(
        experiment="Table V",
        title=f"MM computing time (s) vs tile size, L-SSD{config[:3]}",
        headers=["Tile size", "Row-major", "Column-major"],
    )
    col_times: list[float] = []
    row_times: list[float] = []
    x, y, z, remote = config
    for tile in tiles:
        times = {}
        for order in ("row", "column"):
            testbed = Testbed(scale)
            job = testbed.job(x, y, z, remote_ssd=remote)
            result = run_matmul(
                job,
                testbed.pfs,
                MatmulConfig(
                    n=scale.matrix_n, tile=tile,
                    b_placement="nvm", access_order=order,
                ),
            )
            report.verified &= result.verified
            times[order] = result.compute_time
        row_times.append(times["row"])
        col_times.append(times["column"])
        report.add_row(tile, times["row"], times["column"])
    report.claim(
        "larger tiles cut column-major computing time (better locality); "
        "row-major is largely insensitive",
        f"column: {col_times[0]:.3f}s @ {tiles[0]} -> {col_times[-1]:.3f}s "
        f"@ {tiles[-1]}; row varies "
        f"{100 * (max(row_times) / min(row_times) - 1):.0f}%",
    )
    return report


# ----------------------------------------------------------------------
def table6(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Parallel sort: DRAM-only 2-pass vs NVMalloc hybrid configurations.

    Runs with ``cpu_slowdown=1``: unlike MM (cubic compute vs quadratic
    bytes), sorting shrinks compute and I/O together, so the MM
    calibration must not be applied.
    """
    scale = scale.with_(cpu_slowdown=1.0)
    report = ExperimentReport(
        experiment="Table VI",
        title="Sorting time with various configurations",
        headers=["Config", "Mode", "Time (s)", "Passes"],
    )
    results = {}

    def one(label, x, y, z, remote, mode):
        testbed = Testbed(scale)
        job = testbed.job(x, y, z, remote_ssd=remote)
        result = run_quicksort(
            job,
            testbed.pfs,
            SortConfig(
                total_elements=scale.sort_elements,
                mode=mode,
                dram_elements_per_rank=scale.sort_dram_per_rank,
            ),
        )
        report.verified &= result.verified
        results[label] = result
        report.add_row(result.job_label, mode, result.elapsed, result.passes)

    one("dram", 8, 16, 0, False, "dram-2pass")
    one("local", 8, 16, 16, False, "hybrid")
    one("remote", 8, 8, 8, True, "hybrid")
    speedup = results["dram"].elapsed / results["local"].elapsed
    report.claim(
        "hybrid L-SSD(8:16:16) sorts in one pass, ~10x faster than the "
        "2-pass DRAM-only run that exchanges interim data through the PFS",
        f"L-SSD speedup {speedup:.1f}x; R-SSD(8:8:8) "
        f"{results['dram'].elapsed / results['remote'].elapsed:.1f}x "
        "(half the nodes, double the per-node load)",
    )
    return report


# ----------------------------------------------------------------------
def table7(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Random-write synthetic: dirty-page flush vs whole-chunk flush."""
    report = ExperimentReport(
        experiment="Table VII",
        title="Data exchanged under NVMalloc's write optimization (random "
        "byte writes)",
        headers=["Mode", "Written to FUSE (MiB)", "Written to SSD (MiB)", "SSD/app amplification"],
    )
    measured = {}
    for optimized in (True, False):
        testbed = Testbed(scale)
        job = testbed.job(
            1, 1, 1, dirty_page_writeback=optimized,
            # Region must dwarf the caches for evictions to dominate.
        )
        result = run_randwrite(
            job,
            RandWriteConfig(
                region_bytes=scale.randwrite_region,
                num_writes=scale.randwrite_count,
            ),
        )
        report.verified &= result.verified
        measured[optimized] = result
        report.add_row(
            "w/ Optimization" if optimized else "w/o Optimization",
            result.written_to_fuse / MiB,
            result.written_to_ssd / MiB,
            result.amplification_to_ssd,
        )
        report.add_cache_stats(
            "w/ Optimization" if optimized else "w/o Optimization",
            result.chunk_cache,
            result.page_cache,
        )
    ratio = measured[False].written_to_ssd / max(measured[True].written_to_ssd, 1)
    report.claim(
        "writing only dirty 4 KB pages instead of whole 256 KB chunks cuts "
        "SSD traffic by ~38x (504 MB vs 19.3 GB)",
        f"whole-chunk mode writes {ratio:.1f}x more to the SSDs",
    )
    return report


# ----------------------------------------------------------------------
def checkpoint_experiment(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """§III-E: chunk-linked checkpoints with COW and incremental behaviour."""
    report = ExperimentReport(
        experiment="Checkpointing (§III-E)",
        title="ssdcheckpoint: linked chunks, copy-on-write, incremental cost",
        headers=["Timestep", "Bytes written", "Bytes linked", "COW chunks after prev ckpt"],
    )
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 1)
    result = run_checkpoint_workload(
        job,
        CheckpointWorkloadConfig(
            variable_bytes=scale.checkpoint_variable,
            dram_state_bytes=scale.checkpoint_dram_state,
            timesteps=4,
        ),
    )
    report.verified &= result.restores_verified
    for t in range(result.config.timesteps):
        report.add_row(
            t,
            result.bytes_written_per_step[t],
            result.bytes_linked_per_step[t],
            result.cow_chunks_per_step[t],
        )
    report.claim(
        "checkpointing avoids copying NVM-resident variables (saves cost "
        "and write cycles) and gets incremental checkpoints for free",
        f"linking avoided {100 * result.linking_savings:.1f}% of checkpoint "
        f"volume; every restore verified bit-exact: {result.restores_verified}",
    )
    return report
