"""Fault-injection experiment: crash schedules under replication.

Runs STREAM and the checkpoint workload with a seeded
:class:`~repro.faults.FaultPlan` (one benefactor crash plus a transient
slowdown, timed mid-workload) at replication degrees r ∈ {1, 2}, against
no-fault baselines at the same degree and topology:

- **r=2** must ride through the crash: the workload completes with
  correct application bytes, zero chunks lost, and background
  re-replication restores full redundancy before the run is declared
  done.  The report shows the availability of the data path (fraction of
  chunk operations that needed no retry), the recovery traffic the
  repair cost, and the elapsed-time overhead vs. the no-fault baseline.
- **r=1** (the paper's unreplicated layout) must fail *cleanly* on the
  same schedule: the client surfaces
  :class:`~repro.errors.ChunkUnavailableError` (or ``ssdcheckpoint``
  raises :class:`~repro.errors.CheckpointError` with the lost chunk set)
  — no hang, no partial corruption.

Every fault time is derived from the run's *virtual* clock and a fixed
seed, so the whole report digests bit-identically across repeats and
across the serial/parallel orchestrators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CheckpointError, ChunkUnavailableError
from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.faults import FaultPlan
from repro.parallel.job import Job
from repro.util.units import MiB
from repro.workloads.checkpoint_wl import (
    CheckpointWorkloadConfig,
    run_checkpoint_workload,
)
from repro.workloads.stream import StreamConfig, run_stream

#: Heartbeat period of the manager's monitor during fault runs (virtual
#: seconds) — bounds crash-detection latency for chunks no client touches.
MONITOR_INTERVAL = 0.025

#: Seed for the crash/slowdown schedules (see docs/INTERNALS.md, "Fault
#: model": all fault randomness is derived from this, never wall clock).
FAULT_SEED = 1234


@dataclass
class _LegResult:
    """One workload run (baseline or faulted) and its store-side health."""

    status: str  # "ok" or the exception class name of a clean failure
    elapsed: float  # virtual seconds of the workload's measured window
    total_virtual: float  # virtual seconds from testbed start to done
    verified: bool  # application bytes correct (content checks passed)
    retries: int
    data_ops: int
    rereplicated: float
    recovery_bytes: float
    degraded: float
    lost: float
    under_replicated: int

    @property
    def availability(self) -> float:
        """Fraction of chunk data operations that needed no retry."""
        if not self.data_ops:
            return 1.0
        return max(0.0, 1.0 - self.retries / self.data_ops)


def _start_services(job: Job) -> None:
    """Spawn the store's background processes: heartbeat + repair."""
    manager = job.manager
    assert manager is not None
    job.engine.process(manager.monitor(MONITOR_INTERVAL, rounds=None))
    job.engine.process(manager.rereplicator())


def _finish_leg(
    testbed: Testbed, job: Job, status: str, elapsed: float, verified: bool
) -> _LegResult:
    """Quiesce repair traffic and snapshot the store-side health."""
    manager = job.manager
    assert manager is not None
    engine = testbed.engine
    if status == "ok":
        quiesce = engine.process(manager.rereplication_quiesce())
        engine.run(quiesce)
    metrics = testbed.cluster.metrics
    return _LegResult(
        status=status,
        elapsed=elapsed,
        total_virtual=engine.now,
        verified=verified,
        retries=metrics.count("store.client.retries"),
        data_ops=(
            metrics.count("store.client.bytes_read")
            + metrics.count("store.client.bytes_written")
        ),
        rereplicated=metrics.value("store.manager.chunks_rereplicated"),
        recovery_bytes=metrics.value("store.manager.rereplication_bytes"),
        degraded=metrics.value("store.manager.chunks_degraded"),
        lost=metrics.value("store.manager.chunks_lost"),
        under_replicated=len(manager.under_replicated()),
    )


def _stream_leg(
    scale: ExperimentScale, replication: int, plan: FaultPlan | None
) -> _LegResult:
    """STREAM TRIAD with all arrays on the NVM store (worst case for the
    store: every element streams through it once per iteration)."""
    testbed = Testbed(scale)
    # Remote benefactors (R-SSD): the store partition is disjoint from
    # the compute nodes, so a benefactor crash never takes a rank's CPU
    # with it — the cleanest reading of "the app survives node loss".
    # r=1 runs a single rank: with no replicas a crash kills the rank,
    # and a surviving sibling would deadlock in the STREAM barriers.
    ranks = 2 if replication > 1 else 1
    job = testbed.job(
        1, ranks, 4, remote_ssd=True, replication=replication
    )
    _start_services(job)
    if plan is not None:
        assert job.manager is not None
        testbed.engine.process(plan.inject(job.manager))
    config = StreamConfig(
        elements=scale.stream_elements,
        iterations=scale.stream_iterations,
        placement={"A": "nvm", "B": "nvm", "C": "nvm"},
        block_bytes=scale.stream_block,
    )
    try:
        result = run_stream(job, config)
    except ChunkUnavailableError:
        return _finish_leg(
            testbed, job, "ChunkUnavailableError", testbed.engine.now, False
        )
    return _finish_leg(testbed, job, "ok", result.elapsed, result.verified)


def _checkpoint_leg(
    scale: ExperimentScale, replication: int, plan: FaultPlan | None
) -> _LegResult:
    """The §III-E checkpoint loop: COW-heavy writes plus bit-exact
    restore verification of every historical checkpoint."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 4, remote_ssd=True, replication=replication)
    _start_services(job)
    if plan is not None:
        assert job.manager is not None
        testbed.engine.process(plan.inject(job.manager))
    config = CheckpointWorkloadConfig(
        variable_bytes=scale.checkpoint_variable,
        dram_state_bytes=scale.checkpoint_dram_state,
        timesteps=4,
    )
    try:
        result = run_checkpoint_workload(job, config)
    except (CheckpointError, ChunkUnavailableError) as error:
        return _finish_leg(
            testbed, job, type(error).__name__, testbed.engine.now, False
        )
    return _finish_leg(
        testbed, job, "ok", result.elapsed, result.restores_verified
    )


def _plan_for(
    baseline: _LegResult, benefactor_names: list[str], replication: int
) -> FaultPlan:
    """A seeded schedule scaled to the baseline's virtual duration: one
    crash mid-workload, plus (at r>=2) a transient slowdown."""
    total = baseline.total_virtual
    return FaultPlan.seeded(
        FAULT_SEED,
        benefactor_names,
        crashes=1,
        slowdowns=1 if replication > 1 else 0,
        window=(0.35 * total, 0.65 * total),
        slow_duration=0.1 * total,
        slow_extra=0.0005,
    )


def _benefactor_names(scale: ExperimentScale) -> list[str]:
    """The (registration-ordered) benefactor names fault plans draw from.

    All legs use four remote benefactors, so one throwaway testbed tells
    us the names without running anything.
    """
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 4, remote_ssd=True)
    assert job.manager is not None
    return [b.name for b in job.manager.benefactors()]


def faults(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Crash schedules under replication: availability, recovery, overhead."""
    report = ExperimentReport(
        experiment="Fault tolerance (§III-E)",
        title="Benefactor crash mid-workload: r=2 rides through, r=1 fails clean",
        headers=[
            "Workload", "r", "Schedule", "Status", "Elapsed (s)",
            "Overhead %", "Avail %", "Re-repl", "Recovery MiB", "Lost",
        ],
    )
    names = _benefactor_names(scale)
    legs = {
        "STREAM": _stream_leg,
        "checkpoint": _checkpoint_leg,
    }
    for workload, run_leg in legs.items():
        for replication in (1, 2):
            baseline = run_leg(scale, replication, None)
            report.verified &= baseline.status == "ok" and baseline.verified
            report.add_row(
                workload, replication, "none", "baseline",
                round(baseline.elapsed, 6), "-",
                f"{100 * baseline.availability:.1f}",
                int(baseline.rereplicated),
                round(baseline.recovery_bytes / MiB, 3),
                int(baseline.lost),
            )
            plan = _plan_for(baseline, names, replication)
            faulted = run_leg(scale, replication, plan)
            if replication > 1:
                # Must ride through: correct bytes, nothing lost, full
                # redundancy restored by run end.
                report.verified &= (
                    faulted.status == "ok"
                    and faulted.verified
                    and faulted.lost == 0
                    and faulted.under_replicated == 0
                    and faulted.rereplicated >= faulted.degraded - faulted.lost
                )
                overhead = (
                    100.0 * (faulted.elapsed - baseline.elapsed)
                    / baseline.elapsed
                    if baseline.elapsed
                    else 0.0
                )
                overhead_cell = f"{overhead:+.1f}"
            else:
                # Must fail cleanly (no hang, no silent corruption).
                report.verified &= faulted.status in (
                    "ChunkUnavailableError", "CheckpointError"
                )
                overhead_cell = "-"
            report.add_row(
                workload, replication, plan.describe(), faulted.status,
                round(faulted.elapsed, 6), overhead_cell,
                f"{100 * faulted.availability:.1f}",
                int(faulted.rereplicated),
                round(faulted.recovery_bytes / MiB, 3),
                int(faulted.lost),
            )
    report.claim(
        "§III-E: the aggregate store must degrade gracefully when "
        "contributing nodes fail; replication makes node loss survivable",
        "r=2 completed both workloads through a mid-run benefactor crash "
        "with zero lost chunks and redundancy restored in the background; "
        "r=1 surfaced the loss as a clean error on the same schedule",
    )
    return report
