"""Content-addressed on-disk cache for experiment results.

Every experiment run is deterministic given (a) the experiment name, (b)
the :class:`~repro.experiments.configs.ExperimentScale` it runs at, and
(c) the code of ``src/repro`` itself — drivers build fresh testbeds and
share no state.  The cache therefore keys each result by a sha256 over
exactly those inputs and stores the report's canonical payload plus its
digest.  A hit re-renders bit-identically to the run that produced it; a
change to any config knob, the scale, or any ``.py`` file under
``src/repro`` changes the key and forces a recompute.

Layout: ``<root>/<key[:2]>/<key>.json``, one entry per file, written
atomically (tmp + rename) so concurrent workers and interrupted runs can
never leave a torn entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from repro.experiments.configs import ExperimentScale
from repro.experiments.report import ExperimentReport

#: Bump when the entry layout changes; old entries become misses.
CACHE_SCHEMA = 1

#: Default cache directory (repo-/cwd-local so CI can key it into
#: ``actions/cache``); override with ``--cache`` or ``REPRO_RESULT_CACHE``.
DEFAULT_CACHE_DIR = ".repro_result_cache"


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def fingerprint_json(obj: object) -> str:
    """sha256 of the canonical (sorted, compact) JSON form of ``obj``."""
    return _sha256(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def scale_fingerprint(scale: ExperimentScale) -> str:
    """Fingerprint of every knob of a scale — any change is a new key."""
    return fingerprint_json(dataclasses.asdict(scale))


_CODE_FP_CACHE: dict[str, str] = {}


def code_fingerprint(root: str | Path | None = None, *, refresh: bool = False) -> str:
    """sha256 over (relative path, content hash) of every ``.py`` under ``root``.

    ``root`` defaults to the installed ``repro`` package directory, i.e.
    ``src/repro`` in a source checkout.  The walk is sorted so the result
    is independent of filesystem order, and memoized per root per process
    (an orchestrator run hashes the tree once, not once per experiment).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    key = str(root)
    if not refresh and key in _CODE_FP_CACHE:
        return _CODE_FP_CACHE[key]
    entries: list[tuple[str, str]] = []
    for path in sorted(root.rglob("*.py")):
        entries.append(
            (path.relative_to(root).as_posix(), _sha256(path.read_bytes()))
        )
    fingerprint = fingerprint_json(entries)
    _CODE_FP_CACHE[key] = fingerprint
    return fingerprint


def result_key(name: str, scale: ExperimentScale, code_fp: str) -> str:
    """The content address of one experiment run."""
    return _sha256(
        "\n".join(
            [
                f"schema={CACHE_SCHEMA}",
                f"experiment={name}",
                f"scale={scale.name}",
                f"config={scale_fingerprint(scale)}",
                f"code={code_fp}",
            ]
        ).encode("utf-8")
    )


class ResultCache:
    """One directory of content-addressed experiment results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, object] | None:
        """The entry at ``key``, or None if absent/corrupt/stale-schema.

        A surviving entry is self-consistent: its stored digest matches a
        digest recomputed from the stored report payload, so a hit cannot
        silently hand back a result the current report code would render
        differently.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA or entry.get("key") != key:
            self.misses += 1
            return None
        try:
            report = ExperimentReport.from_payload(entry["report"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        if report.digest() != entry.get("digest"):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: str,
        *,
        experiment: str,
        scale: str,
        report: ExperimentReport,
        telemetry: dict[str, object],
    ) -> None:
        """Persist one result atomically under ``key``."""
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "experiment": experiment,
            "scale": scale,
            "digest": report.digest(),
            "report": report.to_payload(),
            "telemetry": dict(telemetry),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
