"""Explicit placement (NVMalloc) vs transparent swap (the §I alternative).

The abstract's closing claim: "while NVMalloc enables transparent access
to NVM-resident variables, the explicit control it provides is crucial to
optimize application performance."  §I describes the alternative —
re-enabling kernel virtual memory with the SSD as swap.  This driver runs
the same two workloads over both mechanisms on one node:

1. **sequential sweep** of an array far larger than memory: NVMalloc's
   256 KB chunk transfers amortize device latency that 4 KB(+cluster)
   swap I/O cannot;
2. **hot/cold mix** — a small, heavily re-referenced array next to a big
   streamed one: under swap the kernel's LRU lets the cold stream evict
   the hot working set; with NVMalloc the application simply places the
   hot array in DRAM and the cold one on the store.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.core.variable import Array
from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.mem.swap import SwapSpace, SwappedArray
from repro.parallel.comm import RankContext
from repro.sim.events import Event
from repro.util.units import KiB, MiB

SWEEP_ELEMENTS = 1 << 20  # 8 MiB
HOT_ELEMENTS = 1 << 16  # 512 KiB
HOT_PASSES = 30
BLOCK = 1 << 13


def _sweep(array: Array, passes: int = 1) -> Generator[Event, object, float]:
    """Sequentially read the whole array ``passes`` times; returns a sum."""
    total = 0.0
    for _ in range(passes):
        for start in range(0, array.size, BLOCK):
            piece = yield from array.read_slice(
                start, min(start + BLOCK, array.size)
            )
            total += float(piece[0])
    return total


def _fill(array: Array) -> Generator[Event, object, None]:
    for start in range(0, array.size, BLOCK):
        stop = min(start + BLOCK, array.size)
        yield from array.write_slice(start, np.arange(start, stop, dtype=np.float64))


def _hot_cold(
    hot: Array, cold: Array
) -> Generator[Event, object, None]:
    """Alternate long cold streaming bursts with full hot-set passes.

    Each cold burst is larger than the hot set, so a shared LRU (the
    swap case) evicts the hot pages before every hot pass; explicit
    hot-in-DRAM placement is immune.
    """
    burst = 2 * hot.size  # elements of cold per burst
    cold_cursor = 0
    while cold_cursor < cold.size:
        stop = min(cold_cursor + burst, cold.size)
        for start in range(cold_cursor, stop, BLOCK):
            yield from cold.read_slice(start, min(start + BLOCK, stop))
        cold_cursor = stop
        for start in range(0, hot.size, BLOCK):
            yield from hot.read_slice(start, min(start + BLOCK, hot.size))


def explicit_vs_swap(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Run both workloads under swap and under NVMalloc placement."""
    report = ExperimentReport(
        experiment="Explicit control (abstract, §I)",
        title="NVMalloc placement vs transparent swap to the local SSD",
        headers=["Workload", "Swap (s)", "NVMalloc (s)", "Speedup"],
    )
    # DRAM available to the application for array data / caches — equal
    # on both sides: swap gets it all as residency; NVMalloc splits it
    # between the explicitly-placed hot array and the two cache layers.
    memory_budget = 1 * MiB

    def swap_run(workload: str) -> float:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=32 * MiB))
        node = testbed.cluster.node(0)
        swap = SwapSpace(node, resident_bytes=memory_budget)
        engine = testbed.engine

        def app():
            if workload == "sweep":
                arr = SwappedArray(swap, (SWEEP_ELEMENTS,), np.dtype(np.float64))
                yield from _fill(arr)
                start = engine.now
                yield from _sweep(arr, passes=2)
                return engine.now - start
            hot = SwappedArray(swap, (HOT_ELEMENTS,), np.dtype(np.float64))
            cold = SwappedArray(swap, (SWEEP_ELEMENTS,), np.dtype(np.float64))
            yield from _fill(hot)
            yield from _fill(cold)
            start = engine.now
            yield from _hot_cold(hot, cold)
            return engine.now - start

        return float(engine.run(engine.process(app())))

    def nvmalloc_run(workload: str) -> float:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=32 * MiB))
        # Same memory budget: for the hot/cold workload the hot array
        # (512 KiB) is explicitly placed in DRAM, leaving the rest for
        # the caches; the sweep gives everything to the caches.
        hot_bytes = HOT_ELEMENTS * 8
        cache_budget = memory_budget - hot_bytes
        job = testbed.job(
            1, 1, 1,
            fuse_cache_bytes=max(256 * KiB, cache_budget // 2),
            page_cache_bytes=max(64 * KiB, cache_budget // 2),
        )
        ctx: RankContext = job.rank_context(0)
        engine = job.engine

        def app():
            assert ctx.nvmalloc is not None
            if workload == "sweep":
                arr = yield from ctx.nvmalloc.ssdmalloc_array(
                    (SWEEP_ELEMENTS,), np.float64, owner="sweep"
                )
                yield from _fill(arr)
                start = engine.now
                yield from _sweep(arr, passes=2)
                return engine.now - start
            # Explicit placement: the hot working set goes to DRAM, only
            # the cold stream lives on the NVM store.
            hot = ctx.dram_array((HOT_ELEMENTS,), np.float64)
            cold = yield from ctx.nvmalloc.ssdmalloc_array(
                (SWEEP_ELEMENTS,), np.float64, owner="cold"
            )
            yield from _fill(hot)
            yield from _fill(cold)
            start = engine.now
            yield from _hot_cold(hot, cold)
            return engine.now - start

        return float(engine.run(engine.process(app())))

    speedups = {}
    for workload, label in [
        ("sweep", "Sequential sweep (8 MiB, 2 passes)"),
        ("hotcold", "Hot working set + cold stream"),
    ]:
        swap_time = swap_run(workload)
        nvm_time = nvmalloc_run(workload)
        speedups[workload] = swap_time / nvm_time
        report.add_row(label, swap_time, nvm_time, speedups[workload])

    # Sharing: MPI processes have private address spaces, so under swap
    # each one drags its own copy of a common dataset through the SSD;
    # NVMalloc's shared mmap file serves all of them from one copy
    # (the Fig. 4 optimization, unavailable to transparent swap).
    # Dataset larger than the combined caches/residency on both sides,
    # so each mechanism pays real device traffic for it — but small
    # enough that the 8 private swap copies together stay within a
    # quarter of the node's SSD partition at any scale (16 MiB at SMALL,
    # the historical constant; TINY's 128 MiB SSD cannot hold 8x16 MiB).
    nprocs = 8
    share_elements = (scale.ssd_per_node // 4) // (nprocs * 8)

    def swap_shared() -> float:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=64 * MiB))
        node = testbed.cluster.node(0)
        swap = SwapSpace(node, resident_bytes=nprocs * memory_budget)
        engine = testbed.engine

        def worker(source: SwappedArray | None):
            arr = SwappedArray(swap, (share_elements,), np.dtype(np.float64))
            yield from _fill(arr)  # each process populates its own copy
            yield from _sweep(arr)
            return engine.now

        start = engine.now
        procs = [engine.process(worker(None)) for _ in range(nprocs)]
        engine.run_all(procs)
        return engine.now - start

    def nvmalloc_shared() -> float:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=64 * MiB))
        job = testbed.job(
            8, 1, 1,
            fuse_cache_bytes=nprocs * memory_budget // 2,
            page_cache_bytes=nprocs * memory_budget // 2,
        )
        engine = job.engine

        def worker(ctx: RankContext):
            assert ctx.nvmalloc is not None
            arr = yield from ctx.nvmalloc.ssdmalloc_array(
                (share_elements,), np.float64, owner=f"r{ctx.rank}",
                shared_key="shared-dataset",
            )
            if ctx.rank == 0:
                yield from _fill(arr)
            yield from ctx.barrier()
            yield from _sweep(arr)
            yield from ctx.barrier()
            return engine.now

        start = engine.now
        procs = [
            engine.process(worker(job.rank_context(r))) for r in range(nprocs)
        ]
        engine.run_all(procs)
        return engine.now - start

    swap_share_time = swap_shared()
    nvm_share_time = nvmalloc_shared()
    share_speedup = swap_share_time / nvm_share_time
    report.add_row(
        f"{nprocs} processes reading one "
        f"{share_elements * 8 // MiB} MiB dataset",
        swap_share_time, nvm_share_time, share_speedup,
    )

    # Capacity: swap is confined to the node-local device partition,
    # NVMalloc aggregates benefactors across nodes (§I's deployment
    # argument: not every node can carry enough NVM).
    big_elements = 2 * SWEEP_ELEMENTS
    local_partition = big_elements * 8 // 2  # half the dataset

    def swap_big() -> str:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=64 * MiB))
        swap = SwapSpace(
            testbed.cluster.node(0), resident_bytes=memory_budget,
            swap_bytes=local_partition,
        )
        try:
            SwappedArray(swap, (big_elements,), np.dtype(np.float64))
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            return f"fails ({type(exc).__name__})"
        return "unexpectedly fit"

    def nvmalloc_big() -> float:
        testbed = Testbed(scale.with_(cpu_slowdown=1.0, dram_per_node=64 * MiB))
        job = testbed.job(
            1, 4, 4,
            fuse_cache_bytes=memory_budget // 2,
            page_cache_bytes=memory_budget // 2,
            benefactor_contribution=local_partition,  # per node!
        )
        ctx = job.rank_context(0)
        engine = job.engine

        def app():
            assert ctx.nvmalloc is not None
            arr = yield from ctx.nvmalloc.ssdmalloc_array(
                (big_elements,), np.float64, owner="big"
            )
            yield from _fill(arr)
            start = engine.now
            yield from _sweep(arr)
            return engine.now - start

        return float(engine.run(engine.process(app())))

    swap_outcome = swap_big()
    nvm_big_time = nvmalloc_big()
    report.add_row(
        "Dataset 2x the local NVM partition", swap_outcome, nvm_big_time, "-",
    )

    report.claim(
        "transparent access alone is not enough: NVMalloc's explicit "
        "control is crucial to optimize application performance (abstract); "
        "swap is also confined to the local device (§I)",
        f"sequential local streaming is a wash ({speedups['sweep']:.2f}x — "
        "kernel swap is fine at what it does); explicit hot-in-DRAM "
        f"placement wins the mixed workload {speedups['hotcold']:.1f}x; "
        f"the shared mmap file wins the 8-process read {share_speedup:.1f}x "
        f"(swap drags 8 private copies through the SSD); beyond the local "
        f"partition swap {swap_outcome} while the aggregate store finishes "
        f"in {nvm_big_time:.2f}s",
    )
    return report
