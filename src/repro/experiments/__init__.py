"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver builds a fresh simulated testbed at a chosen
:class:`~repro.experiments.configs.ExperimentScale`, runs the paper's
workload grid, and returns an :class:`~repro.experiments.report.ExperimentReport`
whose rows mirror the paper's table/figure (``report.render()`` prints it).
"""

from repro.experiments.configs import SMALL, TINY, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.tables import (
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
    checkpoint_experiment,
)
from repro.experiments.cache_tiering import cache_tiering
from repro.experiments.cost import cost_analysis
from repro.experiments.explicit import explicit_vs_swap
from repro.experiments.faults import faults
from repro.experiments.lifecycle import ckpt_lifecycle
from repro.experiments.parallel import Orchestrator, RunOutcome, check_identity
from repro.experiments.resultcache import ResultCache
from repro.experiments.scaleout import scaleout
from repro.experiments.slo_traffic import slo_traffic

__all__ = [
    "ExperimentReport",
    "ExperimentScale",
    "Orchestrator",
    "ResultCache",
    "RunOutcome",
    "SMALL",
    "TINY",
    "Testbed",
    "cache_tiering",
    "check_identity",
    "checkpoint_experiment",
    "ckpt_lifecycle",
    "cost_analysis",
    "explicit_vs_swap",
    "faults",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "scaleout",
    "slo_traffic",
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
