"""Open-loop traffic experiment: load-latency curves and SLO-under-failure.

The 19th experiment, and the first whose primary metric is tail latency
rather than makespan.  A seeded client swarm (see :mod:`repro.traffic`)
offers Poisson arrivals with Pareto-sized, Zipf-keyed read/write/
checkpoint-restore requests against the aggregate store, in legs that
differ in exactly one variable each:

1. **Calibration** — the same request sequence drained *closed-loop*
   measures the store's sustainable capacity (requests per virtual
   second) that anchors the sweep.
2. **Load sweep (r=1)** — the identical request sequence offered
   open-loop at 0.5×/0.8×/0.95× of capacity.  The p99 latency must rise
   monotonically with load; the *knee* is the load step with the largest
   relative p99 jump.
3. **Burstiness** — the 0.8× leg re-offered with MMPP on-off arrivals at
   the same mean rate: burstiness alone inflates the tail.
4. **SLO under failure** — at 0.8× load: an r=2 leg must ride through a
   seeded mid-run benefactor crash with zero failed requests and the SLO
   still attained, the same crash at r=1 must surface as *reported*
   violations (failed requests in the table, not a crashed experiment),
   and an r=2 leg with a transient SSD service-rate degradation
   (:class:`~repro.faults.TransientSlowdown` with ``rate_factor``) shows
   a slow replica inflating p99 without failing anything.

The SLO target itself is derived from the measured baseline — the 0.5×
leg's p99 times ``scale.slo_target_factor`` — so every verdict is
relative to this testbed, never a hand-tuned constant.  All randomness
(arrivals, sizes, keys, fault times) comes from seeded generators; the
whole report digests bit-identically across repeats, hash seeds, and the
serial/parallel orchestrators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport, attainment_cell, rate_cell
from repro.experiments.runner import Testbed
from repro.faults import FaultPlan
from repro.parallel.job import Job
from repro.traffic import (
    ClientSwarm,
    MMPPProcess,
    SwarmConfig,
    SwarmResult,
    build_schedule,
)
from repro.traffic.arrivals import RequestSchedule, ZipfKeys
from repro.traffic.slo import SloSummary, summarize, window_summary

#: Heartbeat period of the manager's monitor (virtual seconds) — bounds
#: crash-detection latency, same rationale as the faults experiment.
MONITOR_INTERVAL = 0.025

#: Seed for fault schedules (crash/slowdown victims and times).
FAULT_SEED = 4321

#: Relative window the fault strikes inside, as *arrival quantiles* of
#: the leg's schedule: mid-run by request count, clear of warmup and
#: drain.  (Quantiles, not a fraction of the arrival span: the span is
#: dominated by the slowest client's straggler tail, and a fault planted
#: at 0.5x span would land after most requests already completed.)
FAULT_WINDOW = (0.35, 0.65)

#: SSD service-rate degradation factor of the slow-replica leg.
SLOW_RATE_FACTOR = 8.0

#: Minimum fraction of requests served within the SLO for a leg to count
#: as "SLO attained" (the r=2 ride-through gate).
ATTAIN_THRESHOLD = 0.9


@dataclass
class _Leg:
    """One swarm execution plus the store-side health snapshot."""

    label: str
    replication: int
    load: str  # offered load as a fraction of capacity ("-" for closed loop)
    schedule_desc: str
    result: SwarmResult
    lost: float
    under_replicated: int
    retries: int


def _start_services(job: Job) -> None:
    """Spawn the store's background heartbeat + repair processes."""
    manager = job.manager
    assert manager is not None
    job.engine.process(manager.monitor(MONITOR_INTERVAL, rounds=None))
    job.engine.process(manager.rereplicator())


def _run_leg(
    scale: ExperimentScale,
    label: str,
    replication: int,
    load: str,
    schedule: RequestSchedule,
    *,
    closed: bool = False,
    plan: FaultPlan | None = None,
) -> _Leg:
    """Run one leg on a fresh testbed (remote benefactors, as in the
    faults experiment: a benefactor crash never takes a client node)."""
    testbed = Testbed(scale)
    job = testbed.job(1, 2, 4, remote_ssd=True, replication=replication)
    _start_services(job)
    if plan is not None:
        assert job.manager is not None
        testbed.engine.process(plan.inject(job.manager))
    swarm = ClientSwarm(job, SwarmConfig(region_bytes=scale.slo_region_bytes))
    if closed:
        result = swarm.closed_loop(schedule, workers=scale.slo_workers)
    else:
        result = swarm.open_loop(schedule)
    manager = job.manager
    assert manager is not None
    if result.completed_ok == result.issued:
        # Clean legs also wait for repair traffic to restore redundancy,
        # so "under-replicated at end" is a real verdict, not a race.
        testbed.engine.run(testbed.engine.process(manager.rereplication_quiesce()))
    metrics = testbed.cluster.metrics
    return _Leg(
        label=label,
        replication=replication,
        load=load,
        schedule_desc=plan.describe() if plan is not None else "none",
        result=result,
        lost=metrics.value("store.manager.chunks_lost"),
        under_replicated=len(manager.under_replicated()),
        retries=metrics.count("store.client.retries"),
    )


def _benefactor_names(scale: ExperimentScale) -> list[str]:
    """Registration-ordered benefactor names (throwaway testbed)."""
    testbed = Testbed(scale)
    job = testbed.job(1, 2, 4, remote_ssd=True)
    assert job.manager is not None
    return [b.name for b in job.manager.benefactors()]


def _fault_plan(
    names: list[str], schedule: RequestSchedule, *, crash: bool
) -> FaultPlan:
    """A seeded mid-run fault pinned inside the schedule's bulk: the
    strike window spans the FAULT_WINDOW arrival *quantiles*, so a
    deterministic share of requests always arrives after the fault."""
    n = len(schedule)
    window = (
        float(schedule.times[int(FAULT_WINDOW[0] * n)]),
        float(schedule.times[int(FAULT_WINDOW[1] * n)]),
    )
    if crash:
        return FaultPlan.seeded(
            FAULT_SEED, names, crashes=1, slowdowns=0, window=window
        )
    return FaultPlan.seeded(
        FAULT_SEED,
        names,
        crashes=0,
        slowdowns=1,
        window=window,
        slow_duration=window[1] - window[0],
        slow_extra=0.0,
        slow_rate_factor=SLOW_RATE_FACTOR,
    )


def _row(report: ExperimentReport, leg: _Leg, summary: SloSummary) -> None:
    result = leg.result
    report.add_row(
        leg.label,
        leg.replication,
        leg.load,
        leg.schedule_desc,
        rate_cell(summary.ok, result.duration),
        round(summary.p50 * 1e3, 4),
        round(summary.p99 * 1e3, 4),
        round(summary.p999 * 1e3, 4),
        attainment_cell(summary.within_slo, summary.count),
        summary.errors,
    )


def slo_traffic(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Offered load × replication × faults: the load-latency curve, its
    knee, and SLO verdicts under a mid-run crash and a slow replica."""
    report = ExperimentReport(
        experiment="SLO traffic (open loop)",
        title="Load-latency curve and SLO under failure on the aggregate store",
        headers=[
            "Leg", "r", "Load", "Schedule", "Req/s",
            "p50 ms", "p99 ms", "p99.9 ms", "Attain %", "Errors",
        ],
    )
    unit = build_schedule(
        scale.slo_seed,
        scale.slo_clients,
        scale.slo_requests_per_client,
        keys=ZipfKeys(num_keys=scale.slo_num_keys),
        read_fraction=scale.slo_read_fraction,
        checkpoint_fraction=scale.slo_checkpoint_fraction,
    )
    names = _benefactor_names(scale)

    # 1. Closed-loop calibration: the capacity the sweep is offered
    #    against.  Same request sequence, so the mix matches exactly.
    cal = _run_leg(scale, "calibrate (closed)", 1, "-", unit, closed=True)
    capacity = cal.result.rate
    report.verified &= capacity > 0 and cal.result.completed_ok == cal.result.issued

    # 2. Open-loop load sweep at r=1.
    sweep: list[_Leg] = []
    for factor in scale.slo_load_factors:
        schedule = unit.at_rate(factor * capacity)
        sweep.append(
            _run_leg(scale, "poisson sweep", 1, f"{factor:.2f}x", schedule)
        )

    # 3. Bursty arrivals at the same mean rate as the middle sweep leg.
    mid = scale.slo_load_factors[1]
    bursty_unit = build_schedule(
        scale.slo_seed,
        scale.slo_clients,
        scale.slo_requests_per_client,
        process=MMPPProcess(),
        keys=ZipfKeys(num_keys=scale.slo_num_keys),
        read_fraction=scale.slo_read_fraction,
        checkpoint_fraction=scale.slo_checkpoint_fraction,
    )
    burst = _run_leg(
        scale, "mmpp burst", 1, f"{mid:.2f}x", bursty_unit.at_rate(mid * capacity)
    )

    # 4. SLO under failure, all at the middle load.
    fault_schedule = unit.at_rate(mid * capacity)
    crash_plan = _fault_plan(names, fault_schedule, crash=True)
    slow_plan = _fault_plan(names, fault_schedule, crash=False)
    r2_base = _run_leg(scale, "r=2 baseline", 2, f"{mid:.2f}x", fault_schedule)
    r2_crash = _run_leg(
        scale, "r=2 crash", 2, f"{mid:.2f}x", fault_schedule, plan=crash_plan
    )
    r1_crash = _run_leg(
        scale, "r=1 crash", 1, f"{mid:.2f}x", fault_schedule, plan=crash_plan
    )
    r2_slow = _run_leg(
        scale, "r=2 slow replica", 2, f"{mid:.2f}x", fault_schedule, plan=slow_plan
    )

    # The SLO target is measured, not hand-tuned: the light-load leg's
    # p99 times the scale's headroom factor.  Summaries are pure folds,
    # so deriving the target after all legs ran changes nothing upstream.
    low_summary = summarize(sweep[0].result.records, slo_target=float("inf"))
    slo_target = scale.slo_target_factor * low_summary.p99
    summaries = {
        id(leg): summarize(
            leg.result.records, slo_target=slo_target, duration=leg.result.duration
        )
        for leg in [cal, *sweep, burst, r2_base, r2_crash, r1_crash, r2_slow]
    }
    for leg in [cal, *sweep, burst, r2_base, r2_crash, r1_crash, r2_slow]:
        _row(report, leg, summaries[id(leg)])

    # Verification: monotone load→p99 curve with an identifiable knee.
    p99s = [summaries[id(leg)].p99 for leg in sweep]
    report.verified &= all(a <= b for a, b in zip(p99s, p99s[1:]))
    report.verified &= all(
        summaries[id(leg)].errors == 0 for leg in [*sweep, burst, r2_base]
    )
    report.verified &= summaries[id(sweep[0])].attainment >= ATTAIN_THRESHOLD
    knee_index = max(
        range(1, len(sweep)),
        key=lambda i: p99s[i] / p99s[i - 1] if p99s[i - 1] > 0 else 0.0,
    )
    knee_load = scale.slo_load_factors[knee_index]

    # r=2 must ride through the crash with the SLO attained; r=1 must
    # *report* violations (failed requests), not crash the experiment.
    crash_summary = summaries[id(r2_crash)]
    report.verified &= (
        crash_summary.errors == 0
        and r2_crash.lost == 0
        and r2_crash.under_replicated == 0
        and crash_summary.attainment >= ATTAIN_THRESHOLD
    )
    report.verified &= summaries[id(r1_crash)].errors > 0
    # The slow replica inflates p99 without failing anything.
    slow_summary = summaries[id(r2_slow)]
    report.verified &= (
        slow_summary.errors == 0
        and slow_summary.p99 > summaries[id(r2_base)].p99
    )

    crash_at = min(event.at for event in crash_plan.events)
    crash_window = window_summary(
        r2_crash.result.records,
        crash_at,
        r2_crash.result.duration,
        slo_target=slo_target,
    )
    report.claim(
        "a disaggregated memory service must hold its latency SLO as "
        "offered load approaches capacity (open-loop tail, not makespan)",
        f"p99 rose monotonically {1e3 * p99s[0]:.3f} -> {1e3 * p99s[-1]:.3f} ms "
        f"over {scale.slo_load_factors[0]:.2f}x-"
        f"{scale.slo_load_factors[-1]:.2f}x of the measured "
        f"{capacity:.0f} req/s capacity; knee at {knee_load:.2f}x "
        f"(SLO target {1e3 * slo_target:.3f} ms)",
    )
    report.claim(
        "replication must keep the service inside its SLO through the "
        "loss of a contributing node, while an unreplicated store "
        "surfaces the violation",
        f"r=2 rode through '{crash_plan.describe()}' with 0 failed "
        f"requests, {100 * crash_summary.attainment:.1f}% attainment "
        f"({100 * crash_window.attainment:.1f}% for arrivals after the "
        f"crash); r=1 on the same schedule reported "
        f"{summaries[id(r1_crash)].errors} failed requests; a "
        f"{SLOW_RATE_FACTOR:g}x-degraded replica inflated p99 "
        f"{1e3 * summaries[id(r2_base)].p99:.3f} -> "
        f"{1e3 * slow_summary.p99:.3f} ms with nothing lost",
    )
    return report
