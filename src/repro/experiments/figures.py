"""Figure drivers (Figs. 2-6)."""

from __future__ import annotations

from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.workloads.matmul import MatmulConfig, MatmulResult, run_matmul
from repro.workloads.stream import StreamConfig, StreamKernel, run_stream

#: The paper's Fig. 3/5 configuration grid: (x, y, z, remote).
FIG3_CONFIGS: list[tuple[int, int, int, bool]] = [
    (2, 16, 0, False),  # DRAM(2:16:0)
    (2, 16, 16, False),  # L-SSD(2:16:16)
    (8, 16, 16, False),  # L-SSD(8:16:16)
    (8, 8, 8, False),  # L-SSD(8:8:8)
    (8, 8, 8, True),  # R-SSD(8:8:8)
    (8, 8, 4, True),  # R-SSD(8:8:4)
    (8, 8, 2, True),  # R-SSD(8:8:2)
    (8, 8, 1, True),  # R-SSD(8:8:1)
]

#: Fig. 2's x-axis: which arrays live on the NVM store.
FIG2_PLACEMENTS: list[tuple[str, dict[str, str]]] = [
    ("None", {"A": "dram", "B": "dram", "C": "dram"}),
    ("A", {"A": "nvm", "B": "dram", "C": "dram"}),
    ("B", {"A": "dram", "B": "nvm", "C": "dram"}),
    ("C", {"A": "dram", "B": "dram", "C": "nvm"}),
    ("A&B", {"A": "nvm", "B": "nvm", "C": "dram"}),
    ("B&C", {"A": "dram", "B": "nvm", "C": "nvm"}),
    ("A&C", {"A": "nvm", "B": "dram", "C": "nvm"}),
]


def _mm(
    scale: ExperimentScale,
    x: int,
    y: int,
    z: int,
    remote: bool,
    **mm_overrides,
) -> MatmulResult:
    """One MM run on a fresh testbed."""
    testbed = Testbed(scale)
    job = testbed.job(x, y, z, remote_ssd=remote)
    config = MatmulConfig(
        n=mm_overrides.pop("n", scale.matrix_n),
        tile=mm_overrides.pop("tile", scale.matrix_tile),
        b_placement="nvm" if z else "dram",
        **mm_overrides,
    )
    return run_matmul(job, testbed.pfs, config)


# ----------------------------------------------------------------------
def fig2(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """STREAM TRIAD bandwidth, normalized to DRAM = 100 (log-scale plot).

    One node, 8 threads, each array independently placed on DRAM or the
    NVM store (local benefactor, then remote).
    """
    report = ExperimentReport(
        experiment="Figure 2",
        title="STREAM TRIAD normalized bandwidth by array placement",
        headers=["Arrays on SSD", "Local-SSD (DRAM=100)", "Remote-SSD (DRAM=100)"],
    )

    # STREAM is a one-node bandwidth benchmark: the paper sizes each array
    # at 1/4 of node DRAM (2 GB of 8 GB); keep that ratio rather than the
    # MM-oriented DRAM budget, and run cores uncalibrated (the MM cpu
    # slowdown compensates cubic-vs-quadratic scaling, which does not
    # apply to a streaming kernel).
    stream_scale = scale.with_(
        dram_per_node=scale.stream_elements * 8 * 4, cpu_slowdown=1.0
    )

    def one(placement: dict[str, str], remote: bool) -> tuple[float, bool]:
        testbed = Testbed(stream_scale)
        job = testbed.job(8, 1, 1, remote_ssd=remote)
        result = run_stream(
            job,
            StreamConfig(
                elements=scale.stream_elements,
                kernel=StreamKernel.TRIAD,
                iterations=scale.stream_iterations,
                placement=placement,
                block_bytes=scale.stream_block,
            ),
        )
        return result.bandwidth, result.verified

    dram_bw, ok = one(FIG2_PLACEMENTS[0][1], remote=False)
    report.verified &= ok
    ratios_local: list[float] = []
    ratios_remote: list[float] = []
    for label, placement in FIG2_PLACEMENTS:
        if label == "None":
            report.add_row(label, 100.0, 100.0)
            continue
        local_bw, ok_l = one(placement, remote=False)
        remote_bw, ok_r = one(placement, remote=True)
        report.verified &= ok_l and ok_r
        report.add_row(
            label, 100.0 * local_bw / dram_bw, 100.0 * remote_bw / dram_bw
        )
        ratios_local.append(dram_bw / local_bw)
        ratios_remote.append(dram_bw / remote_bw)
    single_local = sum(ratios_local[:3]) / 3
    single_remote = sum(ratios_remote[:3]) / 3
    report.claim(
        "DRAM outpaces NVMalloc STREAM by ~62x (local SSD) and ~115x (remote)",
        f"single-array placements: {single_local:.0f}x local, "
        f"{single_remote:.0f}x remote",
    )
    return report


# ----------------------------------------------------------------------
def fig3(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """MM runtime with the five-stage breakdown across configurations."""
    report = ExperimentReport(
        experiment="Figure 3",
        title="MM runtime (row-major, shared mmap file for B)",
        headers=[
            "Config", "Input&Split-A", "Input-B", "Broadcast-B",
            "Computing", "Collect&Output-C", "Total",
        ],
    )
    totals: dict[str, float] = {}
    for x, y, z, remote in FIG3_CONFIGS:
        result = _mm(scale, x, y, z, remote, shared_mmap=True, access_order="row")
        report.verified &= result.verified
        label = result.job_label
        totals[label] = result.total
        st = result.stage_times
        report.add_row(
            label, st["input_a"], st["input_b"], st["bcast_b"],
            st["compute"], st["collect_c"], result.total,
        )
        report.add_cache_stats(label, result.chunk_cache, result.page_cache)
    dram = totals["DRAM(2:16:0)"]
    report.claim(
        "L-SSD(8:16:16) improves on DRAM(2:16:0) by 53.75%",
        f"{100 * (1 - totals['L-SSD(8:16:16)'] / dram):.1f}%",
    )
    report.claim(
        "L-SSD(2:16:16) is only slightly worse than DRAM-only (2.19%)",
        f"{100 * (totals['L-SSD(2:16:16)'] / dram - 1):.1f}%",
    )
    report.claim(
        "R-SSD(8:8:8) vs L-SSD(8:8:8) overhead is small (1.42%)",
        f"{100 * (totals['R-SSD(8:8:8)'] / totals['L-SSD(8:8:8)'] - 1):.1f}%",
    )
    report.claim(
        "R-SSD(8:8:1): one SSD per 8 nodes still beats DRAM-only by 32.47% "
        "on half the nodes",
        f"{100 * (1 - totals['R-SSD(8:8:1)'] / dram):.1f}%",
    )
    return report


# ----------------------------------------------------------------------
def fig4(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Shared vs individual mmap files for matrix B."""
    report = ExperimentReport(
        experiment="Figure 4",
        title="MM: shared vs individual mmap files for B",
        headers=["Config", "Shared total", "Individual total", "Individual slowdown %"],
    )
    worst = 0.0
    for x, y, z, remote in [
        (2, 16, 16, False),
        (8, 16, 16, False),
        (8, 8, 8, False),
        (8, 8, 8, True),
    ]:
        shared = _mm(scale, x, y, z, remote, shared_mmap=True)
        individual = _mm(scale, x, y, z, remote, shared_mmap=False)
        report.verified &= shared.verified and individual.verified
        slowdown = 100.0 * (individual.total / shared.total - 1.0)
        worst = max(worst, slowdown)
        report.add_row(shared.job_label, shared.total, individual.total, slowdown)
    report.claim(
        "individual mmap files are slower, by up to 18%",
        f"up to {worst:.1f}% slower",
    )
    return report


# ----------------------------------------------------------------------
def fig5(
    scale: ExperimentScale = SMALL,
    configs: list[tuple[int, int, int, bool]] | None = None,
) -> ExperimentReport:
    """Compute time, row-major vs column-major access to B."""
    report = ExperimentReport(
        experiment="Figure 5",
        title="MM computing time by access pattern to B",
        headers=["Config", "Row-major", "Column-major", "Column/Row"],
    )
    grid = configs if configs is not None else FIG3_CONFIGS
    col_over_row: dict[str, float] = {}
    for x, y, z, remote in grid:
        row = _mm(scale, x, y, z, remote, access_order="row")
        col = _mm(scale, x, y, z, remote, access_order="column")
        report.verified &= row.verified and col.verified
        ratio = col.compute_time / row.compute_time
        col_over_row[row.job_label] = ratio
        report.add_row(row.job_label, row.compute_time, col.compute_time, ratio)
    nvm_ratios = [v for k, v in col_over_row.items() if not k.startswith("DRAM")]
    dram_ratios = [v for k, v in col_over_row.items() if k.startswith("DRAM")]
    if nvm_ratios and dram_ratios:
        report.claim(
            "column-major is much slower, and the penalty is far larger with "
            "NVMalloc than with DRAM",
            f"column/row: {max(dram_ratios):.1f}x on DRAM vs up to "
            f"{max(nvm_ratios):.1f}x on NVM",
        )
    return report


# ----------------------------------------------------------------------
def fig6(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """MM at 4x the Fig. 3 data size (the paper's 8 GB/matrix run).

    Matrix B no longer fits in any single node's DRAM; only NVM-backed
    configurations can run at all.
    """
    big_n = scale.matrix_n * 2  # 4x bytes
    report = ExperimentReport(
        experiment="Figure 6",
        title=f"MM with 4x matrices ({big_n}x{big_n}; B exceeds node DRAM)",
        headers=[
            "Config", "Input&Split-A", "Input-B", "Broadcast-B",
            "Computing", "Collect&Output-C", "Total",
        ],
    )
    small_compute: dict[str, float] = {}
    big_compute: dict[str, float] = {}
    for x, y, z, remote in [
        (8, 16, 16, False),
        (8, 8, 8, False),
        (8, 8, 8, True),
        (8, 8, 4, True),
    ]:
        small = _mm(scale, x, y, z, remote)
        big = _mm(scale, x, y, z, remote, n=big_n)
        report.verified &= small.verified and big.verified
        small_compute[big.job_label] = small.compute_time
        big_compute[big.job_label] = big.compute_time
        st = big.stage_times
        report.add_row(
            big.job_label, st["input_a"], st["input_b"], st["bcast_b"],
            st["compute"], st["collect_c"], big.total,
        )
    growth = [
        big_compute[label] / small_compute[label] for label in big_compute
    ]
    report.claim(
        "computing grows by ~9x for 4x data (16x flops) thanks to longer "
        "rows favouring the tiling; performance scales well",
        f"compute grew {min(growth):.1f}x-{max(growth):.1f}x for 8x flops",
    )
    return report
