"""Command-line experiment runner.

Regenerate any (or all) of the paper's tables and figures::

    python -m repro.experiments                 # everything, SMALL scale
    python -m repro.experiments fig3 table7     # a subset
    python -m repro.experiments --scale tiny    # quick structural pass
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    SMALL,
    TINY,
    checkpoint_experiment,
    cost_analysis,
    explicit_vs_swap,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
)

EXPERIMENTS = {
    "table1": (table1, "Device characteristics"),
    "fig2": (fig2, "STREAM TRIAD bandwidth by placement"),
    "table3": (table3, "STREAM with vs without NVMalloc"),
    "fig3": (fig3, "MM runtime breakdown across configurations"),
    "fig4": (fig4, "Shared vs individual mmap files"),
    "fig5": (fig5, "Row- vs column-major access"),
    "table4": (table4, "Bytes exchanged app/FUSE/SSD"),
    "table5": (table5, "Tile-size sweep"),
    "fig6": (fig6, "MM beyond DRAM capacity"),
    "table6": (table6, "Parallel sort"),
    "table7": (table7, "Dirty-page write optimization"),
    "checkpoint": (checkpoint_experiment, "Chunk-linked checkpointing"),
    "cost": (cost_analysis, "Provisioning-cost analysis"),
    "explicit": (explicit_vs_swap, "Explicit placement vs transparent swap"),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"which to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale", choices=["small", "tiny"], default="small",
        help="experiment scale (default: small, the calibrated one)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:12s} {description}")
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    scale = SMALL if args.scale == "small" else TINY

    failed = []
    for name in names:
        driver, _ = EXPERIMENTS[name]
        start = time.time()
        report = driver() if name == "table1" else driver(scale)
        print(report.render())
        print(f"[{name}: {time.time() - start:.1f}s wall]\n")
        if not report.verified:
            failed.append(name)
    if failed:
        print(f"UNVERIFIED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _entry() -> int:
    """Console-script entry point tolerant of closed pipes (`| head`)."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(_entry())
