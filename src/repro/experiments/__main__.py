"""Command-line experiment runner.

Regenerate any (or all) of the paper's tables and figures::

    python -m repro.experiments                 # everything, SMALL scale
    python -m repro.experiments fig3 table7     # a subset
    python -m repro.experiments --jobs 4        # fan across 4 processes
    python -m repro.experiments --scale tiny    # quick structural pass
    python -m repro.experiments --no-cache      # force recompute
    python -m repro.experiments faults --trace --trace-out trace.json
    python -m repro.experiments --json out.json # machine-readable telemetry
    python -m repro.experiments --list

Results are memoized in a content-addressed cache (``--cache DIR``,
default ``.repro_result_cache``): a re-run whose experiment name, scale,
config, and ``src/repro`` code are unchanged replays the stored report
bit-identically without building a single testbed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.experiments import SMALL, TINY
from repro.experiments.parallel import (
    EXPERIMENTS,
    MatrixResult,
    Orchestrator,
    RunOutcome,
    check_identity,
)
from repro.experiments.resultcache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_fingerprint,
)


def _print_outcome(outcome: RunOutcome) -> None:
    """One experiment's report plus its telemetry line."""
    if outcome.report is not None:
        print(outcome.report.render())
    if outcome.error is not None:
        print(f"ERROR in {outcome.name}:\n{outcome.error}", file=sys.stderr)
    if outcome.cache_hit:
        source = f"cache hit, originally {outcome.cached_wall_seconds:.1f}s"
    else:
        source = outcome.worker
    print(
        f"[{outcome.name}: {outcome.wall_seconds:.1f}s wall, "
        f"{outcome.peak_rss_bytes / 2**20:.0f} MiB peak RSS, {source}]\n",
        flush=True,
    )


def _print_summary(result: MatrixResult, jobs: int) -> None:
    """The final pass/fail line — visible even when reports scrolled away."""
    ran = len(result.outcomes) - result.cache_hits
    print(
        f"{len(result.outcomes)} experiments in {result.wall_seconds:.1f}s wall "
        f"(--jobs {jobs}): {ran} run, {result.cache_hits} cached"
    )
    failed = result.failed
    if failed:
        print(f"FAIL: {', '.join(failed)}", file=sys.stderr)
    else:
        print("PASS: all experiments verified")


def _write_json(
    path: str, result: MatrixResult, scale_name: str, jobs: int
) -> None:
    payload = {
        "schema": 1,
        "scale": scale_name,
        "jobs": jobs,
        "cores": os.cpu_count(),
        "code_fingerprint": code_fingerprint(),
        "wall_seconds": result.wall_seconds,
        "failed": result.failed,
        "results": [
            {
                "name": o.name,
                "digest": o.digest,
                "verified": o.verified,
                "wall_seconds": o.wall_seconds,
                "peak_rss_bytes": o.peak_rss_bytes,
                "cache_hit": o.cache_hit,
                "worker": o.worker,
                "testbeds": o.testbeds,
                "error": o.error,
            }
            for o in result.outcomes
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"which to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale", choices=["small", "tiny"], default="small",
        help="experiment scale (default: small, the calibrated one)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes to fan experiments across (default: 1)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker processes for sharded single-run experiments "
             "(scaleout); execution-only knob, digests are invariant "
             "(default: $REPRO_SHARDS or 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help=f"result-cache directory (default: $REPRO_RESULT_CACHE or "
             f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (always recompute)",
    )
    parser.add_argument(
        "--json", default=None, metavar="OUT",
        help="also write per-run telemetry (digests, walls, RSS) as JSON",
    )
    parser.add_argument(
        "--verify-identity", action="store_true",
        help="run serially AND with --jobs workers, compare digests, and "
             "fail on any mismatch (caching disabled)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="trace runs on the virtual clock (forces --jobs 1 and "
             "--no-cache; adds a 'where the time went' section per report)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="OUT.json",
        help="with --trace: also write a Chrome trace_event JSON "
             "(open in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        # Sharded drivers read the knob from the environment so it also
        # reaches orchestrator worker processes (fork inherits it).
        os.environ["REPRO_SHARDS"] = str(args.shards)

    if args.trace_out and not args.trace:
        parser.error("--trace-out requires --trace")
    if args.trace:
        # Spans live on in-process tracers and are not picklable, so a
        # traced run is serial; a cache hit would replay a span-less
        # report, so the cache is off too.
        from repro import obs

        obs.enable(True)
        args.jobs = 1
        args.no_cache = True

    if args.list:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:12s} {description}")
        return 0

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    scale = SMALL if args.scale == "small" else TINY

    if args.verify_identity:
        jobs = max(2, args.jobs)
        identical, pairs = check_identity(names, scale, jobs=jobs)
        for name, (serial_digest, parallel_digest) in pairs.items():
            status = "identical" if serial_digest == parallel_digest else "MISMATCH"
            print(f"{name:12s} serial={serial_digest} jobs{jobs}={parallel_digest} [{status}]")
        if not identical:
            print("FAIL: parallel digests diverged from serial", file=sys.stderr)
            return 1
        print(f"PASS: {len(names)} experiments bit-identical at --jobs {jobs}")
        return 0

    cache = None
    if not args.no_cache:
        cache_dir = args.cache or os.environ.get(
            "REPRO_RESULT_CACHE", DEFAULT_CACHE_DIR
        )
        cache = ResultCache(cache_dir)

    orchestrator = Orchestrator(
        jobs=args.jobs, cache=cache, on_result=_print_outcome
    )
    result = orchestrator.run(names, scale)
    _print_summary(result, args.jobs)
    if args.json:
        _write_json(args.json, result, scale.name, args.jobs)
    if args.trace_out:
        from repro import obs
        from repro.obs.export import write_chrome_trace

        events = write_chrome_trace(args.trace_out, obs.collected())
        print(f"wrote {events} trace events to {args.trace_out}")
    return 0 if not result.failed else 1


def _entry() -> int:
    """Console-script entry point tolerant of closed pipes (`| head`)."""
    try:
        return main()
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(_entry())
