"""Scale-out experiment: sharded checkpoint ingest into the aggregate store.

The paper's setting (§IV) is extreme-scale: thousands of compute nodes
draining checkpoint state into an aggregate SSD store.  This experiment
models that traffic at partition granularity and is the repo's first
*sharded single-run* scenario: the cluster is split into
``scale.scaleout_shards`` node groups, each simulated by its own private
engine, coupled only through cross-shard fabric messages under the
conservative lookahead-window protocol of :mod:`repro.parallel.shards`.

Each compute node alternates compute timesteps with checkpoint bursts:
every burst writes ``chunks_per_step`` chunks striped deterministically
across benefactor nodes in *other* shards.  A chunk occupies the
sender's TX port for its serialization time, propagates one link
latency, then occupies the receiver's RX port and SSD channel for the
store, after which a small ACK makes the reverse trip; a node starts its
next timestep only when the whole burst is acknowledged.  The traffic is
therefore genuinely request/response across the shard boundary — exactly
the pattern conservative sync must order correctly.

``--shards N`` (``$REPRO_SHARDS``) picks how many worker processes
execute the fixed set of model partitions.  It is a wall-clock knob
only: the report digest is invariant across worker counts, which
``tests/test_shards.py`` pins.
"""

from __future__ import annotations

from repro.experiments.configs import ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.network.link import LinkSpec
from repro.util.units import MB
from repro.parallel.shards import (
    DST_NODE,
    KIND,
    NBYTES,
    RECV_TIME,
    REQ_ID,
    SRC_SHARD,
    ShardRunResult,
    ShardSpec,
    run_sharded,
    shard_workers_from_env,
)
from repro.sim.engine import Engine
from repro.sim.events import AllOf, Event
from repro.sim.resources import Resource


#: The shard boundary is a rack-level hop: GigE line rate, but with the
#: extra store-and-forward latency of the aggregation switch.  This
#: latency IS the conservative lookahead window, so it also sets the
#: sync granularity of the sharded run.
CROSS_SHARD_LINK = LinkSpec(
    name="cross-rack GigE", bandwidth=117 * MB, latency=200e-6
)


class CheckpointShard:
    """One node group: compute nodes, NIC ports, benefactor SSD channels."""

    def __init__(self, spec: ShardSpec, shard_id: int) -> None:
        self.spec = spec
        self.shard_id = shard_id
        self.engine = engine = Engine()
        nodes = range(spec.nodes_per_shard)
        self._tx = [Resource(engine, 1, f"s{shard_id}n{n}.tx") for n in nodes]
        self._rx = [Resource(engine, 1, f"s{shard_id}n{n}.rx") for n in nodes]
        self._ssd = [Resource(engine, 1, f"s{shard_id}n{n}.ssd") for n in nodes]
        self.outbox: list[tuple] = []
        self._seq = 0
        self._pending: dict[tuple, Event] = {}
        self.counters: dict[str, float] = {
            "chunks_sent": 0, "chunks_stored": 0, "acks_received": 0,
            "bytes_tx": 0, "bytes_stored": 0,
        }
        self.finish_time: float | None = None
        procs = [engine.process(self._node_program(n)) for n in nodes]
        AllOf(engine, procs).add_callback(self._record_finish)

    # -- the per-node application ---------------------------------------
    def _node_program(self, node: int):
        engine = self.engine
        spec = self.spec
        counters = self.counters
        for step in range(spec.timesteps):
            yield engine.timeout(spec.compute_seconds)
            acks = []
            for chunk in range(spec.chunks_per_step):
                dst_shard, dst_node = self._stripe_target(node, step, chunk)
                req_id = (self.shard_id, node, step, chunk)
                yield from self._send(
                    node, dst_shard, dst_node, "chunk", spec.chunk_bytes, req_id
                )
                counters["chunks_sent"] += 1
                ack = Event(engine)
                self._pending[req_id] = ack
                acks.append(ack)
            # The burst must be durable before the next timestep begins.
            yield AllOf(engine, acks)

    def _stripe_target(self, node: int, step: int, chunk: int) -> tuple[int, int]:
        """Deterministic striping over benefactor nodes in other shards."""
        spec = self.spec
        others = [s for s in range(spec.num_shards) if s != self.shard_id]
        if not others:  # single-shard degenerate case: self-stripe
            others = [self.shard_id]
        index = (node * spec.timesteps + step) * spec.chunks_per_step + chunk
        return others[index % len(others)], (index // len(others)) % spec.nodes_per_shard

    def _send(self, node, dst_shard, dst_node, kind, nbytes, req_id):
        """Occupy the TX port for serialization, then emit the message."""
        spec = self.spec
        engine = self.engine
        tx = self._tx[node]
        request = tx.request()
        yield request
        try:
            yield engine.timeout(nbytes / spec.link.bandwidth)
        finally:
            tx.release(request)
        self._seq += 1
        now = engine._now
        # recv_time = emission + one-way propagation >= send_time + the
        # lookahead window: the conservative-sync delivery guarantee.
        self.outbox.append((
            now + spec.link.latency, now, self.shard_id, self._seq,
            dst_shard, dst_node, kind, nbytes, req_id,
        ))
        self.counters["bytes_tx"] += nbytes

    # -- inbound traffic -------------------------------------------------
    def _on_message(self, event: Event) -> None:
        message = event._value
        if message[KIND] == "chunk":
            self.engine.process(self._store_chunk(message))
        else:  # ack
            self.counters["acks_received"] += 1
            self._pending.pop(message[REQ_ID]).succeed()

    def _store_chunk(self, message):
        """Benefactor side: RX wire time, SSD write, then the ACK trip."""
        spec = self.spec
        engine = self.engine
        node = message[DST_NODE]
        nbytes = message[NBYTES]
        rx = self._rx[node]
        request = rx.request()
        yield request
        try:
            yield engine.timeout(nbytes / spec.link.bandwidth)
        finally:
            rx.release(request)
        ssd = self._ssd[node]
        request = ssd.request()
        yield request
        try:
            yield engine.timeout(spec.ssd_latency + nbytes / spec.ssd_write_bandwidth)
        finally:
            ssd.release(request)
        self.counters["chunks_stored"] += 1
        self.counters["bytes_stored"] += nbytes
        source_node = message[REQ_ID][1]
        yield from self._send(
            node, message[SRC_SHARD], source_node, "ack",
            spec.ack_bytes, message[REQ_ID],
        )

    def _record_finish(self, event: Event) -> None:
        self.finish_time = self.engine.now

    # -- ShardModel interface --------------------------------------------
    def deliver(self, messages: list[tuple]) -> None:
        engine = self.engine
        now = engine._now
        on_message = self._on_message
        events = []
        delays = []
        for message in messages:
            arrival = Event(engine)
            arrival._value = message
            arrival._scheduled = True
            arrival.callbacks = on_message
            events.append(arrival)
            delays.append(message[RECV_TIME] - now)
        engine.schedule_batch(events, delays)

    def advance(self, horizon: float) -> None:
        self.engine.run(horizon)

    def take_outbox(self) -> list[tuple]:
        out = self.outbox
        self.outbox = []
        return out

    def next_time(self) -> float | None:
        engine = self.engine
        if engine._ring:
            return engine._now
        heap = engine._heap
        return heap[0][0] if heap else None

    def summary(self) -> dict:
        return {
            "shard": self.shard_id,
            "finish_time": self.finish_time,
            "done": self.finish_time is not None,
            "events": self.engine.events_processed,
            "counters": dict(sorted(self.counters.items())),
            "ssd_busy": [ssd.busy_seconds() for ssd in self._ssd],
        }


def build_shard(spec: ShardSpec, shard_id: int) -> CheckpointShard:
    """Builder entry point resolved by :func:`repro.parallel.shards`."""
    return CheckpointShard(spec, shard_id)


def spec_for(scale: ExperimentScale) -> ShardSpec:
    """The sharded-run description at one experiment scale."""
    return ShardSpec(
        num_shards=scale.scaleout_shards,
        nodes_per_shard=scale.scaleout_nodes_per_shard,
        builder="repro.experiments.scaleout:build_shard",
        link=CROSS_SHARD_LINK,
        timesteps=scale.scaleout_timesteps,
        chunks_per_step=scale.scaleout_chunks_per_step,
        chunk_bytes=scale.scaleout_chunk_bytes,
    )


def scaleout(
    scale: ExperimentScale, workers: int | None = None
) -> ExperimentReport:
    """Run the sharded checkpoint-ingest scenario and build its report."""
    spec = spec_for(scale)
    if workers is None:
        workers = shard_workers_from_env()
    result = run_sharded(spec, workers=workers)
    return _build_report(spec, result)


def _build_report(spec: ShardSpec, result: ShardRunResult) -> ExperimentReport:
    report = ExperimentReport(
        experiment="Scale-out",
        title=(
            f"Sharded checkpoint ingest: {spec.num_shards} shards x "
            f"{spec.nodes_per_shard} nodes, conservative sync "
            f"(lookahead {spec.lookahead * 1e6:.0f} us)"
        ),
        headers=[
            "Shard", "Chunks out", "Chunks stored", "MiB stored",
            "SSD busy (s)", "SSD util %", "Finish (s)",
        ],
    )
    total_sent = total_stored = total_acked = 0
    total_bytes = 0.0
    makespan = result.makespan
    for summary in result.summaries:
        counters = summary["counters"]
        total_sent += counters["chunks_sent"]
        total_stored += counters["chunks_stored"]
        total_acked += counters["acks_received"]
        total_bytes += counters["bytes_stored"]
        busy = sum(summary["ssd_busy"])
        finish = summary["finish_time"]
        report.add_row(
            f"s{summary['shard']}",
            counters["chunks_sent"],
            counters["chunks_stored"],
            f"{counters['bytes_stored'] / 2**20:.2f}",
            f"{busy:.4f}",
            f"{100 * busy / (len(summary['ssd_busy']) * makespan):.1f}"
            if makespan else "-",
            f"{finish:.4f}" if finish is not None else "incomplete",
        )
    ingest_bw = total_bytes / makespan if makespan else 0.0
    report.claim(
        "aggregate store bandwidth scales with contributing benefactors "
        "(paper SIV: extreme-scale aggregation of node-local SSDs)",
        f"{spec.num_shards * spec.nodes_per_shard} benefactor SSDs ingested "
        f"{total_bytes / 2**20:.1f} MiB in {makespan:.4f}s virtual "
        f"({ingest_bw / 2**20:.1f} MiB/s aggregate)",
    )
    report.claim(
        "conservative lookahead-window sync preserves event order across "
        "shard boundaries (every burst fully acknowledged)",
        f"{total_stored}/{total_sent} chunks stored and "
        f"{total_acked}/{total_sent} acks returned over "
        f"{result.windows} windows",
    )
    report.verified = (
        total_sent > 0
        and total_stored == total_sent
        and total_acked == total_sent
        and all(summary["done"] for summary in result.summaries)
    )
    # Wall-clock telemetry is presentation only (trace_lines are excluded
    # from the digest): worker count must never change the result.
    report.trace_lines.extend([
        f"workers={result.workers} windows={result.windows} "
        f"wall={result.wall_seconds:.2f}s",
        f"barrier wait {result.barrier_wait_seconds:.2f}s "
        f"({100 * result.barrier_share:.1f}% of worker-seconds)",
        f"events={result.events} "
        f"({result.events / result.wall_seconds / 1e3:.0f}k/s wall)"
        if result.wall_seconds else f"events={result.events}",
    ])
    return report
