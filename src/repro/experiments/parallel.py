"""Parallel experiment orchestrator with content-addressed memoization.

Every experiment driver builds *fresh* testbeds and shares no state with
any other run (see ``runner.py``), so the full table/figure matrix is
embarrassingly parallel: this module fans it across worker processes with
a :class:`~concurrent.futures.ProcessPoolExecutor` and memoizes each
result in a :class:`~repro.experiments.resultcache.ResultCache` keyed by
``(experiment, scale, config fingerprint, code fingerprint)``.

Safety is checked, not assumed: :func:`check_identity` runs the same
experiments serially and in parallel and asserts the rendered reports and
byte-flow counter digests are bit-identical — the same property the
result cache relies on to replay a stored result as if it had just run.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.experiments.cache_tiering import cache_tiering
from repro.experiments.configs import ExperimentScale
from repro.experiments.cost import cost_analysis
from repro.experiments.explicit import explicit_vs_swap
from repro.experiments.faults import faults
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6
from repro.experiments.lifecycle import ckpt_lifecycle
from repro.experiments.report import ExperimentReport
from repro.experiments.resultcache import ResultCache, code_fingerprint, result_key
from repro.experiments.runner import Testbed, track_testbeds
from repro.experiments.scaleout import scaleout
from repro.experiments.slo_traffic import slo_traffic
from repro.experiments.tables import (
    checkpoint_experiment,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
)

#: The canonical experiment registry: name -> (driver, description).
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentReport], str]] = {
    "table1": (table1, "Device characteristics"),
    "fig2": (fig2, "STREAM TRIAD bandwidth by placement"),
    "table3": (table3, "STREAM with vs without NVMalloc"),
    "fig3": (fig3, "MM runtime breakdown across configurations"),
    "fig4": (fig4, "Shared vs individual mmap files"),
    "fig5": (fig5, "Row- vs column-major access"),
    "table4": (table4, "Bytes exchanged app/FUSE/SSD"),
    "table5": (table5, "Tile-size sweep"),
    "fig6": (fig6, "MM beyond DRAM capacity"),
    "table6": (table6, "Parallel sort"),
    "table7": (table7, "Dirty-page write optimization"),
    "checkpoint": (checkpoint_experiment, "Chunk-linked checkpointing"),
    "cost": (cost_analysis, "Provisioning-cost analysis"),
    "explicit": (explicit_vs_swap, "Explicit placement vs transparent swap"),
    "faults": (faults, "Crash schedules under replication r in {1,2}"),
    "cache_tiering": (
        cache_tiering,
        "Client cache hierarchy ablation: lru-vs-arc, tier on/off, prefetch",
    ),
    "scaleout": (
        scaleout,
        "Sharded checkpoint ingest under conservative lookahead-window sync",
    ),
    "ckpt_lifecycle": (
        ckpt_lifecycle,
        "Checkpoint chains, async drain, crash-restart recovery",
    ),
    "slo_traffic": (
        slo_traffic,
        "Open-loop load-latency curve, knee, and SLO under failure",
    ),
}

#: Drivers that take no scale argument.
SCALELESS = frozenset({"table1"})

#: Counter prefixes that pin the virtual byte flows of the memory stack
#: (shared with ``tools/bench_wallclock.py``).
COUNTER_PREFIXES = ("pagecache.", "fuse.", "store.client.")


@dataclass
class RunOutcome:
    """One experiment's result plus per-run telemetry."""

    name: str
    report: ExperimentReport | None
    digest: str | None
    verified: bool
    wall_seconds: float
    peak_rss_bytes: int
    cache_hit: bool
    worker: str
    testbeds: int
    error: str | None = None
    #: For cache hits: the wall the original (cached) run took.
    cached_wall_seconds: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.verified


@dataclass
class MatrixResult:
    """An orchestrator pass over a list of experiments."""

    outcomes: list[RunOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def digests(self) -> dict[str, str | None]:
        return {o.name: o.digest for o in self.outcomes}

    @property
    def failed(self) -> list[str]:
        return [o.name for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)


def _peak_rss_bytes() -> int:
    """This process's high-water RSS (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def execute_experiment(
    name: str, scale: ExperimentScale
) -> tuple[ExperimentReport, int]:
    """Run one driver, folding its testbeds' byte-flow counters into the
    report; returns the report and how many testbeds were built."""
    driver, _ = EXPERIMENTS[name]
    with track_testbeds() as tracker:
        report = driver() if name in SCALELESS else driver(scale)
    counters: dict[str, float] = {}
    for testbed in tracker.testbeds:
        for prefix in COUNTER_PREFIXES:
            for key, value in testbed.cluster.metrics.snapshot(prefix).items():
                counters[key] = counters.get(key, 0.0) + value
    report.counters = counters
    if obs.enabled():
        for i, testbed in enumerate(tracker.testbeds):
            tracer = testbed.engine.tracer
            if tracer is None or not tracer.spans:
                continue
            label = f"{name}/testbed{i}"
            obs.collect(label, tracer)
            if report.trace_lines:
                report.trace_lines.append("")
            report.trace_lines.extend(obs.report_lines(label, tracer))
    return report, len(tracker.testbeds)


def _run_payload(name: str, scale: ExperimentScale) -> dict[str, object]:
    """Worker body: run one experiment, return a picklable outcome dict.

    Exceptions are folded into the payload (with traceback) rather than
    raised, so one failing experiment never kills the pool or hides the
    results of its siblings.
    """
    start = time.perf_counter()
    try:
        report, testbeds = execute_experiment(name, scale)
    except Exception:
        return {
            "name": name,
            "error": traceback.format_exc(),
            "wall_seconds": time.perf_counter() - start,
            "peak_rss_bytes": _peak_rss_bytes(),
            "worker": f"pid-{os.getpid()}",
            "testbeds": 0,
        }
    return {
        "name": name,
        "report": report.to_payload(),
        "digest": report.digest(),
        "wall_seconds": time.perf_counter() - start,
        "peak_rss_bytes": _peak_rss_bytes(),
        "worker": f"pid-{os.getpid()}",
        "testbeds": testbeds,
    }


def mp_context():
    """Prefer fork: workers inherit the parent's interpreter state (and
    hash seed), keeping parallel runs bit-identical to serial ones."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class Orchestrator:
    """Fans experiments across processes, memoizing through a ResultCache."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        on_result: Callable[[RunOutcome], None] | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.on_result = on_result

    def run(self, names: list[str], scale: ExperimentScale) -> MatrixResult:
        """Run ``names`` at ``scale``; outcomes come back in input order."""
        start = time.perf_counter()
        self._scale_name = scale.name
        outcomes: dict[str, RunOutcome] = {}
        misses: list[tuple[str, str | None]] = []

        code_fp = code_fingerprint() if self.cache is not None else None
        for name in names:
            key = None
            if self.cache is not None:
                key = result_key(name, scale, code_fp)
                lookup_start = time.perf_counter()
                entry = self.cache.get(key)
                if entry is not None:
                    outcomes[name] = self._hit_outcome(
                        name, entry, time.perf_counter() - lookup_start
                    )
                    if self.on_result:
                        self.on_result(outcomes[name])
                    continue
            misses.append((name, key))

        if self.jobs == 1 or len(misses) <= 1:
            for name, key in misses:
                self._finish(outcomes, _run_payload(name, scale), key)
        elif misses:
            workers = min(self.jobs, len(misses))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=mp_context()
            ) as pool:
                futures = {
                    pool.submit(_run_payload, name, scale): (name, key)
                    for name, key in misses
                }
                for future in as_completed(futures):
                    name, key = futures[future]
                    try:
                        payload = future.result()
                    except Exception as exc:  # worker process died outright
                        payload = {
                            "name": name,
                            "error": f"worker crashed: {exc!r}",
                            "wall_seconds": 0.0,
                            "peak_rss_bytes": 0,
                            "worker": "unknown",
                            "testbeds": 0,
                        }
                    self._finish(outcomes, payload, key)

        return MatrixResult(
            outcomes=[outcomes[name] for name in names],
            wall_seconds=time.perf_counter() - start,
        )

    def _hit_outcome(
        self, name: str, entry: dict[str, object], elapsed: float
    ) -> RunOutcome:
        report = ExperimentReport.from_payload(entry["report"])
        telemetry = entry.get("telemetry", {})
        return RunOutcome(
            name=name,
            report=report,
            digest=entry["digest"],
            verified=report.verified,
            wall_seconds=elapsed,
            peak_rss_bytes=int(telemetry.get("peak_rss_bytes", 0)),
            cache_hit=True,
            worker="cache",
            testbeds=0,
            cached_wall_seconds=float(telemetry.get("wall_seconds", 0.0)),
        )

    def _finish(
        self,
        outcomes: dict[str, RunOutcome],
        payload: dict[str, object],
        key: str | None,
    ) -> None:
        name = payload["name"]
        if "error" in payload:
            outcome = RunOutcome(
                name=name,
                report=None,
                digest=None,
                verified=False,
                wall_seconds=payload["wall_seconds"],
                peak_rss_bytes=payload["peak_rss_bytes"],
                cache_hit=False,
                worker=payload["worker"],
                testbeds=payload["testbeds"],
                error=payload["error"],
            )
        else:
            report = ExperimentReport.from_payload(payload["report"])
            outcome = RunOutcome(
                name=name,
                report=report,
                digest=payload["digest"],
                verified=report.verified,
                wall_seconds=payload["wall_seconds"],
                peak_rss_bytes=payload["peak_rss_bytes"],
                cache_hit=False,
                worker="serial" if self.jobs == 1 else payload["worker"],
                testbeds=payload["testbeds"],
            )
            if self.cache is not None and key is not None:
                self.cache.put(
                    key,
                    experiment=name,
                    scale=self._scale_name,
                    report=report,
                    telemetry={
                        "wall_seconds": outcome.wall_seconds,
                        "peak_rss_bytes": outcome.peak_rss_bytes,
                        "testbeds": outcome.testbeds,
                        "worker": outcome.worker,
                    },
                )
        outcomes[name] = outcome
        if self.on_result:
            self.on_result(outcome)


def check_identity(
    names: list[str], scale: ExperimentScale, jobs: int = 2
) -> tuple[bool, dict[str, tuple[str | None, str | None]]]:
    """Prove fan-out safety: serial and parallel digests must coincide.

    Runs ``names`` twice with caching disabled — once in-process, once
    across ``jobs`` workers — and compares per-experiment digests (which
    cover rendered rows, claims, and byte-flow counters).  Returns
    ``(identical, {name: (serial_digest, parallel_digest)})``.
    """
    serial = Orchestrator(jobs=1, cache=None).run(names, scale)
    parallel = Orchestrator(jobs=jobs, cache=None).run(names, scale)
    pairs = {
        name: (serial.digests.get(name), parallel.digests.get(name))
        for name in names
    }
    identical = all(
        s is not None and s == p for s, p in pairs.values()
    )
    return identical, pairs


__all__ = [
    "COUNTER_PREFIXES",
    "EXPERIMENTS",
    "MatrixResult",
    "Orchestrator",
    "RunOutcome",
    "SCALELESS",
    "Testbed",
    "check_identity",
    "execute_experiment",
]
