"""Structured experiment results with paper-style rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import render_table


@dataclass
class ExperimentReport:
    """One table/figure reproduction: rows plus provenance notes."""

    experiment: str  # e.g. "Figure 3"
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    paper_claims: list[str] = field(default_factory=list)
    measured_claims: list[str] = field(default_factory=list)
    cache_lines: list[str] = field(default_factory=list)
    verified: bool = True

    def add_row(self, *cells: object) -> None:
        """Append one table row."""
        self.rows.append(list(cells))

    def claim(self, paper: str, measured: str) -> None:
        """Record one paper-vs-measured comparison line."""
        self.paper_claims.append(paper)
        self.measured_claims.append(measured)

    def add_cache_stats(self, label: str, chunk=None, page=None) -> None:
        """Record one run's cache behaviour (hit rates, byte flows).

        ``chunk`` is a :class:`repro.fusefs.cache.CacheStats`, ``page`` a
        :class:`repro.mem.pagecache.PageCacheStats`; either may be None.
        """
        if chunk is not None and (chunk.hits or chunk.misses):
            line = (
                f"{label}: chunk cache {100 * chunk.hit_rate:.1f}% hits "
                f"({chunk.hits}/{chunk.hits + chunk.misses}), "
                f"fetched {chunk.fetched_bytes / 2**20:.1f} MiB"
            )
            if chunk.prefetched_bytes:
                line += (
                    f" ({chunk.prefetched_bytes / 2**20:.1f} MiB read-ahead)"
                )
            line += f", wrote back {chunk.writeback_bytes / 2**20:.1f} MiB"
            self.cache_lines.append(line)
        if page is not None and (page.hits or page.misses):
            self.cache_lines.append(
                f"{label}: page cache {100 * page.hit_rate:.1f}% hits "
                f"({page.hits}/{page.hits + page.misses}), faulted "
                f"{page.faulted_bytes / 2**20:.1f} MiB, wrote back "
                f"{page.writeback_bytes / 2**20:.1f} MiB"
            )

    def render(self) -> str:
        """The report as an aligned monospace table plus claim lines."""
        lines = [
            render_table(
                self.headers, self.rows,
                title=f"{self.experiment}: {self.title} [{'OK' if self.verified else 'UNVERIFIED'}]",
            )
        ]
        if self.cache_lines:
            lines.append("")
            lines.append("cache behaviour:")
            for cache_line in self.cache_lines:
                lines.append(f"  {cache_line}")
        if self.paper_claims:
            lines.append("")
            lines.append("paper vs measured:")
            for paper, measured in zip(self.paper_claims, self.measured_claims):
                lines.append(f"  paper:    {paper}")
                lines.append(f"  measured: {measured}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
