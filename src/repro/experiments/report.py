"""Structured experiment results with paper-style rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import render_table


@dataclass
class ExperimentReport:
    """One table/figure reproduction: rows plus provenance notes."""

    experiment: str  # e.g. "Figure 3"
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    paper_claims: list[str] = field(default_factory=list)
    measured_claims: list[str] = field(default_factory=list)
    verified: bool = True

    def add_row(self, *cells: object) -> None:
        """Append one table row."""
        self.rows.append(list(cells))

    def claim(self, paper: str, measured: str) -> None:
        """Record one paper-vs-measured comparison line."""
        self.paper_claims.append(paper)
        self.measured_claims.append(measured)

    def render(self) -> str:
        """The report as an aligned monospace table plus claim lines."""
        lines = [
            render_table(
                self.headers, self.rows,
                title=f"{self.experiment}: {self.title} [{'OK' if self.verified else 'UNVERIFIED'}]",
            )
        ]
        if self.paper_claims:
            lines.append("")
            lines.append("paper vs measured:")
            for paper, measured in zip(self.paper_claims, self.measured_claims):
                lines.append(f"  paper:    {paper}")
                lines.append(f"  measured: {measured}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
