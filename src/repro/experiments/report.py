"""Structured experiment results with paper-style rendering."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.util.tables import render_table

#: Bump when the digest payload layout changes (invalidates result caches).
REPORT_SCHEMA = 1

#: Below this many issued prefetches, "accuracy" is a coin flip, not a
#: rate: a single dead readahead prints as a hard 0% (and one lucky hit
#: as 100%) from a 1-sample population, polluting comparisons between
#: configurations.  Reports suppress the accuracy figure until at least
#: this many prefetches were issued; issued/hit counts are still shown.
MIN_PREFETCH_SAMPLES = 8

#: Same guard for rate-style cells (requests/s, SLO attainment): a TINY
#: leg that issued a handful of requests would otherwise print a rate
#: extrapolated from near-zero virtual seconds or an attainment that is
#: 0%/100% by coin flip.  Below this many samples the cells render the
#: raw counts instead of a rate.
MIN_RATE_SAMPLES = 8


def rate_cell(count: float, seconds: float, *, samples: int | None = None) -> str:
    """A requests/s table cell with zero-sample and low-sample guards.

    ``samples`` defaults to ``count``; when it is below
    :data:`MIN_RATE_SAMPLES` (or the window is empty) the cell shows the
    raw count so tiny legs never print extrapolated-rate noise.
    """
    n = int(count if samples is None else samples)
    if n < MIN_RATE_SAMPLES or seconds <= 0:
        return f"n={int(count)}"
    return f"{count / seconds:.1f}"


def attainment_cell(within: int, issued: int) -> str:
    """An SLO-attainment (%) table cell with the same low-sample guard."""
    if issued <= 0:
        return "-"
    if issued < MIN_RATE_SAMPLES:
        return f"{within}/{issued}"
    return f"{100.0 * within / issued:.1f}"


@dataclass
class ExperimentReport:
    """One table/figure reproduction: rows plus provenance notes."""

    experiment: str  # e.g. "Figure 3"
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    paper_claims: list[str] = field(default_factory=list)
    measured_claims: list[str] = field(default_factory=list)
    cache_lines: list[str] = field(default_factory=list)
    verified: bool = True
    #: Aggregate byte-flow counters of every testbed the driver built,
    #: filled in by the orchestrator (`repro.experiments.parallel`).
    counters: dict[str, float] = field(default_factory=dict)
    #: "Where the time went": critical-path + latency tables harvested
    #: from tracers when the run executed with --trace.  Excluded from
    #: :meth:`digest` so tracing can never change a result's identity.
    trace_lines: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one table row."""
        self.rows.append(list(cells))

    def claim(self, paper: str, measured: str) -> None:
        """Record one paper-vs-measured comparison line."""
        self.paper_claims.append(paper)
        self.measured_claims.append(measured)

    def add_cache_stats(self, label: str, chunk=None, page=None) -> None:
        """Record one run's cache behaviour (hit rates, byte flows).

        ``chunk`` is a :class:`repro.fusefs.cache.CacheStats`, ``page`` a
        :class:`repro.mem.pagecache.PageCacheStats`; either may be None.
        """
        if chunk is not None and (chunk.hits or chunk.misses or chunk.l2_hits):
            # Demand-traffic accounting: identical text to the seed when
            # the tiered-hierarchy stats are zero (default configuration).
            demand_hits = chunk.hits + chunk.l2_hits
            line = (
                f"{label}: chunk cache {100 * chunk.hit_rate:.1f}% hits "
                f"({demand_hits}/{demand_hits + chunk.misses}), "
                f"fetched {chunk.fetched_bytes / 2**20:.1f} MiB"
            )
            if chunk.prefetched_bytes:
                line += (
                    f" ({chunk.prefetched_bytes / 2**20:.1f} MiB read-ahead)"
                )
            if chunk.l2_hits or chunk.l2_spill_bytes:
                line += (
                    f", local tier {100 * chunk.l2_hit_rate:.1f}% of DRAM "
                    f"misses ({chunk.l2_hits} hits, "
                    f"{chunk.l2_promote_bytes / 2**20:.1f} MiB promoted)"
                )
            if chunk.prefetches >= MIN_PREFETCH_SAMPLES:
                line += (
                    f", prefetch accuracy {100 * chunk.prefetch_accuracy:.1f}%"
                    f" ({chunk.prefetch_hits}/{chunk.prefetches})"
                )
            elif chunk.prefetches:
                line += (
                    f", prefetches {chunk.prefetch_hits}/{chunk.prefetches} "
                    f"(too few for an accuracy figure)"
                )
            line += f", wrote back {chunk.writeback_bytes / 2**20:.1f} MiB"
            self.cache_lines.append(line)
        if page is not None and (page.hits or page.misses):
            self.cache_lines.append(
                f"{label}: page cache {100 * page.hit_rate:.1f}% hits "
                f"({page.hits}/{page.hits + page.misses}), faulted "
                f"{page.faulted_bytes / 2**20:.1f} MiB, wrote back "
                f"{page.writeback_bytes / 2**20:.1f} MiB"
            )

    def to_payload(self) -> dict[str, object]:
        """A JSON-safe dict that round-trips through :meth:`from_payload`.

        The payload is the canonical form: :meth:`digest` hashes it, and the
        result cache persists it, so a cached report re-renders and re-digests
        bit-identically to the run that produced it.
        """
        return {
            "schema": REPORT_SCHEMA,
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper_claims": list(self.paper_claims),
            "measured_claims": list(self.measured_claims),
            "cache_lines": list(self.cache_lines),
            "verified": self.verified,
            "counters": dict(self.counters),
            "trace_lines": list(self.trace_lines),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "ExperimentReport":
        """Rebuild a report from :meth:`to_payload` output."""
        if payload.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"unsupported report schema {payload.get('schema')!r}"
            )
        return cls(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            paper_claims=list(payload["paper_claims"]),
            measured_claims=list(payload["measured_claims"]),
            cache_lines=list(payload["cache_lines"]),
            verified=bool(payload["verified"]),
            counters=dict(payload["counters"]),
            trace_lines=list(payload.get("trace_lines", [])),
        )

    def digest(self) -> str:
        """Stable sha256 over rendered rows, claims, and byte-flow counters.

        Two runs of the same experiment are *the same result* iff their
        digests match; the result cache, the parallel-vs-serial identity
        check, and ``tools/bench_wallclock.py`` matrix entries all compare
        this value.  JSON canonicalization (sorted keys, no whitespace)
        makes the hash independent of dict ordering, and Python's
        float-repr round-trip guarantee keeps it exact across a
        serialize/deserialize cycle.
        """
        payload = self.to_payload()
        # Trace output is presentation, not result: a traced and an
        # untraced run of the same experiment must share one digest.
        payload.pop("trace_lines", None)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """The report as an aligned monospace table plus claim lines."""
        lines = [
            render_table(
                self.headers, self.rows,
                title=f"{self.experiment}: {self.title} [{'OK' if self.verified else 'UNVERIFIED'}]",
            )
        ]
        if self.cache_lines:
            lines.append("")
            lines.append("cache behaviour:")
            for cache_line in self.cache_lines:
                lines.append(f"  {cache_line}")
        if self.paper_claims:
            lines.append("")
            lines.append("paper vs measured:")
            for paper, measured in zip(self.paper_claims, self.measured_claims):
                lines.append(f"  paper:    {paper}")
                lines.append(f"  measured: {measured}")
        if self.trace_lines:
            lines.append("")
            lines.append("where the time went:")
            for trace_line in self.trace_lines:
                lines.append(f"  {trace_line}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
