"""Cache-tiering ablation: eviction policy x local tier x prefetch.

Runs four workloads — STREAM TRIAD (cyclic scans), the MM compute stage
(tiled reuse), the §III-E checkpoint loop (bursty writes + re-reads),
and the Table VII random-write synthetic (cache-hostile) — under five
client-cache configurations:

- ``lru``        — the seed default (inline LRU, no tier, no prefetch);
- ``lru+ra``     — the legacy fixed read-ahead window (2 chunks);
- ``arc``        — the adaptive replacement policy, DRAM tier only;
- ``lru+l2``     — LRU plus the node-local SSD cache tier;
- ``arc+l2+pf``  — the full hierarchy: ARC, local tier, and the
  pattern-detecting prefetcher.

Reported per leg: total virtual time, demand hit rate, local-tier hit
rate, prefetch accuracy, bytes read from the aggregate store, and mean
demand-fill latency.  The acceptance claims: the full hierarchy beats
the fixed LRU on randwrite (demand hit rate up, demand-fill latency
down) while staying within 2% virtual time on the other three.

Determinism: every leg runs on a fresh testbed, all configuration lives
in ordered literals, and the cache hierarchy's bookkeeping is
hash-seed-independent (insertion-ordered dicts throughout), so the
report digests bit-identically across repeats, ``PYTHONHASHSEED``
values, and the serial/parallel orchestrators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import MIN_PREFETCH_SAMPLES, ExperimentReport
from repro.experiments.runner import Testbed
from repro.fusefs.cache import CacheStats
from repro.util.units import MiB
from repro.workloads.checkpoint_wl import (
    CheckpointWorkloadConfig,
    run_checkpoint_workload,
)
from repro.workloads.matmul import MatmulConfig, run_matmul
from repro.workloads.randwrite import RandWriteConfig, run_randwrite
from repro.workloads.stream import StreamConfig, run_stream

#: Virtual-time regression budget for the streaming workloads (the
#: hierarchy must never cost more than this where it cannot help).
REGRESSION_BUDGET = 0.02

#: Chunks of fixed read-ahead in the legacy ``lru+ra`` leg.
LEGACY_READAHEAD = 2


def cache_configs(scale: ExperimentScale) -> list[tuple[str, dict]]:
    """The ablation grid: (label, JobConfig overrides), in report order."""
    l2 = scale.local_cache
    return [
        ("lru", {}),
        ("lru+ra", {"readahead_chunks": LEGACY_READAHEAD}),
        ("arc", {"cache_policy": "arc"}),
        ("lru+l2", {"local_cache_bytes": l2}),
        (
            "arc+l2+pf",
            {
                "cache_policy": "arc",
                "local_cache_bytes": l2,
                "prefetch": "adaptive",
            },
        ),
    ]


@dataclass
class _LegResult:
    """One (workload, cache config) run."""

    elapsed: float  # total virtual seconds of the leg's testbed
    verified: bool
    chunk: CacheStats  # job-wide chunk-cache stats at run end
    store_read: float  # bytes fetched from the aggregate store


def _snapshot(testbed: Testbed, job, verified: bool) -> _LegResult:
    chunk, _page = job.cache_stats()
    return _LegResult(
        elapsed=testbed.engine.now,
        verified=verified,
        chunk=chunk,
        store_read=testbed.cluster.metrics.value("store.client.bytes_read"),
    )


def _stream_leg(scale: ExperimentScale, overrides: dict) -> _LegResult:
    """STREAM TRIAD, all arrays on the store: pure cyclic streaming.

    Remote benefactors, as in the paper's deployment: every chunk-cache
    miss pays the network round trip the local tier is meant to short-
    circuit.
    """
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 2, remote_ssd=True, **overrides)
    config = StreamConfig(
        elements=scale.stream_elements,
        iterations=scale.stream_iterations,
        placement={"A": "nvm", "B": "nvm", "C": "nvm"},
        block_bytes=scale.stream_block,
    )
    result = run_stream(job, config)
    return _snapshot(testbed, job, result.verified)


def _mm_leg(scale: ExperimentScale, overrides: dict) -> _LegResult:
    """The Fig. 3 MM kernel with B on the store (tiled column reuse)."""
    testbed = Testbed(scale)
    job = testbed.job(2, 2, 2, **overrides)
    config = MatmulConfig(
        n=scale.matrix_n,
        tile=scale.matrix_tile,
        b_placement="nvm",
        shared_mmap=True,
    )
    result = run_matmul(job, testbed.pfs, config)
    return _snapshot(testbed, job, result.verified)


def _checkpoint_leg(scale: ExperimentScale, overrides: dict) -> _LegResult:
    """The §III-E checkpoint loop: COW writes plus restore re-reads."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 2, remote_ssd=True, **overrides)
    config = CheckpointWorkloadConfig(
        variable_bytes=scale.checkpoint_variable,
        dram_state_bytes=scale.checkpoint_dram_state,
        timesteps=4,
    )
    result = run_checkpoint_workload(job, config)
    return _snapshot(testbed, job, result.restores_verified)


def _randwrite_leg(scale: ExperimentScale, overrides: dict) -> _LegResult:
    """Table VII byte-granular random writes: the cache-hostile case."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 2, remote_ssd=True, **overrides)
    config = RandWriteConfig(
        region_bytes=scale.randwrite_region,
        num_writes=scale.randwrite_count,
    )
    result = run_randwrite(job, config)
    return _snapshot(testbed, job, result.verified)


WORKLOADS = [
    ("STREAM", _stream_leg),
    ("MM", _mm_leg),
    ("checkpoint", _checkpoint_leg),
    ("randwrite", _randwrite_leg),
]


def cache_tiering(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Tiered adaptive client caching: the lru-vs-arc / tier-on-off grid."""
    report = ExperimentReport(
        experiment="Cache tiering (§III-D)",
        title=(
            "Client cache hierarchy: ARC + local SSD tier + adaptive "
            "prefetch vs the fixed LRU"
        ),
        headers=[
            "Workload", "Config", "Elapsed (s)", "vs lru %", "Hit %",
            "L2 %", "PF acc %", "Store read MiB", "Fill ms",
        ],
    )
    configs = cache_configs(scale)
    results: dict[tuple[str, str], _LegResult] = {}
    for workload, run_leg in WORKLOADS:
        for label, overrides in configs:
            leg = run_leg(scale, dict(overrides))
            results[(workload, label)] = leg
            report.verified &= leg.verified
            baseline = results[(workload, "lru")]
            delta = (
                100.0 * (leg.elapsed - baseline.elapsed) / baseline.elapsed
                if baseline.elapsed and label != "lru"
                else 0.0
            )
            chunk = leg.chunk
            report.add_row(
                workload,
                label,
                round(leg.elapsed, 6),
                "-" if label == "lru" else f"{delta:+.2f}",
                f"{100 * chunk.hit_rate:.1f}",
                f"{100 * chunk.l2_hit_rate:.1f}" if chunk.l2_hits else "-",
                (
                    f"{100 * chunk.prefetch_accuracy:.1f}"
                    if chunk.prefetches >= MIN_PREFETCH_SAMPLES
                    else "-"
                ),
                round(leg.store_read / MiB, 3),
                round(1e3 * chunk.demand_fill_latency, 4),
            )
            report.add_cache_stats(f"{workload}/{label}", chunk=chunk)

    # Acceptance: the full hierarchy beats fixed LRU where the paper's
    # client cache hurts most (randwrite), and never costs more than the
    # regression budget where it cannot help.
    base = results[("randwrite", "lru")]
    full = results[("randwrite", "arc+l2+pf")]
    tiered = results[("randwrite", "lru+l2")]
    randwrite_better = (
        full.chunk.hit_rate > base.chunk.hit_rate
        and full.chunk.demand_fill_latency < base.chunk.demand_fill_latency
        and full.elapsed < base.elapsed
    )
    report.verified &= randwrite_better
    within_budget = True
    for workload, _ in WORKLOADS:
        if workload == "randwrite":
            continue
        baseline = results[(workload, "lru")]
        for label, _overrides in configs:
            if label in ("lru", "lru+ra"):
                continue  # the legacy window is a reference, not a gate
            leg = results[(workload, label)]
            within_budget &= leg.elapsed <= baseline.elapsed * (
                1.0 + REGRESSION_BUDGET
            )
    report.verified &= within_budget
    report.claim(
        "§III-D: client-side caching is what makes the aggregate store "
        "competitive; its fixed LRU + static read-ahead leave hits on the "
        "table for cache-hostile access",
        (
            "randwrite with arc+l2+pf: demand hit rate "
            f"{100 * base.chunk.hit_rate:.1f}% -> "
            f"{100 * full.chunk.hit_rate:.1f}%, demand-fill latency "
            f"{1e3 * base.chunk.demand_fill_latency:.3f} -> "
            f"{1e3 * full.chunk.demand_fill_latency:.3f} ms, elapsed "
            f"{base.elapsed:.4f} -> {full.elapsed:.4f} s (local tier alone: "
            f"{tiered.elapsed:.4f} s); streaming workloads within "
            f"{100 * REGRESSION_BUDGET:.0f}% of the seed LRU: "
            f"{'yes' if within_budget else 'NO'}"
        ),
    )
    return report
