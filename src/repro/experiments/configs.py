"""Experiment scales: the paper's setup shrunk with ratios preserved.

The paper runs 2 GB (Figs. 2-5) and 8 GB (Fig. 6) matrices on a testbed
with 8 GB DRAM/node, a 64 MB FUSE cache, and ~1 GB of page cache.  A
faithful full-size run is not feasible in a simulation that carries real
bytes, so each :class:`ExperimentScale` shrinks capacities while keeping
the granularities (256 KB chunks, 4 KB pages) exact and the *relations*
that drive every result intact:

- 2 processes/node worth of replicated B fits in DRAM, 8 do not (Fig. 3);
- the caches hold a fraction of B, so the compute stage streams B from
  the store once per node (the convoy effect the paper relies on);
- the sort dataset is ~1.56x the DRAM budget devoted to it (Table VI);
- the random-write region is many times the FUSE cache (Table VII).

``cpu_slowdown`` compensates for cubic-vs-quadratic scaling: shrinking
the matrix linearly by ``s`` cuts flops by ``s^3`` but bytes by ``s^2``,
so cores are slowed to restore the paper's compute-to-I/O time ratio
(calibrated so that DRAM(2:16:0)'s compute share matches Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.cpu import CPUSpec
from repro.cluster.hal import HalConfig
from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs of one scaled-down reproduction of the HAL testbed."""

    name: str
    # Matrix multiplication (Figs. 3-5, Tables IV-V).
    matrix_n: int
    matrix_tile: int
    # STREAM (Fig. 2, Table III).
    stream_elements: int
    stream_iterations: int
    stream_block: int
    # Sort (Table VI).
    sort_elements: int
    sort_dram_per_rank: int
    # Random write (Table VII).
    randwrite_region: int
    randwrite_count: int
    # Checkpoint workload.
    checkpoint_variable: int
    checkpoint_dram_state: int
    # Testbed capacities.
    dram_per_node: int
    ssd_per_node: int
    fuse_cache: int
    page_cache: int
    benefactor_contribution: int
    pfs_servers: int
    cpu_slowdown: float  # divide per-core flops by this
    # Node-local SSD cache-tier capacity for the cache_tiering ablation
    # (defaulted so older scale literals stay valid; the tier itself is
    # only instantiated when a job passes local_cache_bytes).
    local_cache: int = 8 * MiB
    # Sharded scale-out scenario (repro.experiments.scaleout): model
    # partitions and per-partition checkpoint traffic.  The partition
    # count is part of the scenario — worker count (--shards) is not.
    scaleout_shards: int = 4
    scaleout_nodes_per_shard: int = 2
    scaleout_timesteps: int = 3
    scaleout_chunks_per_step: int = 4
    scaleout_chunk_bytes: int = 256 * KiB
    # Checkpoint-lifecycle experiment (repro.experiments.lifecycle):
    # chain length, epoch sizes, and the async drain's staging budget
    # (defaulted so older scale literals stay valid).
    lifecycle_variable: int = 4 * MiB
    lifecycle_dram_state: int = 128 * KiB
    lifecycle_timesteps: int = 4
    lifecycle_mutate_fraction: float = 0.25
    lifecycle_staging_chunks: int = 2
    # Open-loop traffic / SLO experiment (repro.experiments.slo_traffic):
    # client-population shape, request mix, and the offered-load sweep
    # (defaulted so older scale literals stay valid).
    slo_clients: int = 120
    slo_requests_per_client: int = 4
    slo_region_bytes: int = 2 * MiB
    slo_num_keys: int = 256
    slo_read_fraction: float = 0.7
    slo_checkpoint_fraction: float = 0.05
    slo_load_factors: tuple[float, ...] = (0.5, 0.8, 0.95)
    slo_target_factor: float = 4.0
    slo_workers: int = 8
    slo_seed: int = 77

    def cpu_spec(self) -> CPUSpec:
        """The (possibly slowed) per-core CPU spec for this scale."""
        return CPUSpec(clock_hz=2.4e9, flops_per_cycle=2.0 / self.cpu_slowdown)

    def hal_config(self) -> HalConfig:
        """A HAL testbed config at this scale's capacities."""
        return HalConfig(
            dram_per_node=self.dram_per_node,
            ssd_per_node=self.ssd_per_node,
            cpu_spec=self.cpu_spec(),
        )

    @property
    def matrix_bytes(self) -> int:
        """Bytes of one MM matrix at this scale."""
        return self.matrix_n * self.matrix_n * 8

    def with_(self, **kwargs) -> "ExperimentScale":
        """A modified copy (for ablations)."""
        return replace(self, **kwargs)


#: Benchmark scale: shapes calibrated against the paper (see DESIGN.md §5
#: and EXPERIMENTS.md).  Matrix 512x512 = 2 MiB stands in for 2 GB; the
#: linear shrink is s = 32, so cores are slowed by ~s^1.6 (calibrated 512x)
#: to keep Fig. 3's compute share.
SMALL = ExperimentScale(
    name="small",
    matrix_n=512,
    matrix_tile=64,
    stream_elements=2 * 1024 * 1024,  # 16 MiB per array
    stream_iterations=2,
    stream_block=64 * KiB,
    # 32 MiB of keys vs a ~20.5 MiB aggregate DRAM sort budget: the
    # paper's 200 GB / 128 GB = 1.5625 oversubscription ratio, at a size
    # where bandwidth (not per-message latency) dominates.
    sort_elements=1 << 22,
    sort_dram_per_rank=20480,
    randwrite_region=32 * MiB,
    randwrite_count=16 * 1024,
    checkpoint_variable=8 * MiB,
    checkpoint_dram_state=512 * KiB,
    # 8 MiB/node: 2 processes' replicated 2 MiB B matrices fit (with the
    # master's staging copy), 8 do not — the Fig. 3 DRAM constraint.
    dram_per_node=8 * MiB,
    ssd_per_node=512 * MiB,
    fuse_cache=1 * MiB,
    page_cache=1 * MiB,
    benefactor_contribution=256 * MiB,
    pfs_servers=4,
    cpu_slowdown=512.0,
    # 48x the DRAM chunk cache — a thin slice of the 512 MiB local SSD,
    # sized to the randwrite working set like a real deployment would.
    local_cache=48 * MiB,
    # Scale-out: 8 groups x 4 nodes, four checkpoint bursts of 8 chunks.
    scaleout_shards=8,
    scaleout_nodes_per_shard=4,
    scaleout_timesteps=4,
    scaleout_chunks_per_step=8,
    scaleout_chunk_bytes=256 * KiB,
    # Lifecycle: a 16-chunk variable over 4 epochs, 2 chunks of staging.
    lifecycle_variable=4 * MiB,
    lifecycle_dram_state=256 * KiB,
    lifecycle_timesteps=4,
    lifecycle_mutate_fraction=0.25,
    lifecycle_staging_chunks=2,
    # SLO traffic: a two-thousand-client swarm, heavy-tailed sizes over
    # a 4 MiB/node shared region, 5% checkpoint-restore requests.
    slo_clients=2000,
    slo_requests_per_client=4,
    slo_region_bytes=4 * MiB,
    slo_num_keys=512,
    slo_read_fraction=0.7,
    slo_checkpoint_fraction=0.05,
    slo_load_factors=(0.5, 0.8, 0.95),
    slo_target_factor=4.0,
    slo_workers=8,
    slo_seed=77,
)

#: Test scale: small enough for the full grid to run in unit-test time.
TINY = ExperimentScale(
    name="tiny",
    matrix_n=128,
    matrix_tile=32,
    stream_elements=128 * 1024,  # 1 MiB per array
    stream_iterations=2,
    stream_block=32 * KiB,
    sort_elements=1 << 15,
    sort_dram_per_rank=1 << 10,
    randwrite_region=4 * MiB,
    randwrite_count=2 * 1024,
    checkpoint_variable=1 * MiB,
    checkpoint_dram_state=64 * KiB,
    dram_per_node=6 * MiB,
    ssd_per_node=128 * MiB,
    fuse_cache=512 * KiB,
    page_cache=512 * KiB,
    benefactor_contribution=64 * MiB,
    pfs_servers=2,
    cpu_slowdown=512.0,
    local_cache=8 * MiB,
    scaleout_shards=4,
    scaleout_nodes_per_shard=2,
    scaleout_timesteps=2,
    scaleout_chunks_per_step=3,
    scaleout_chunk_bytes=128 * KiB,
    lifecycle_variable=1 * MiB,
    lifecycle_dram_state=64 * KiB,
    lifecycle_timesteps=3,
    lifecycle_mutate_fraction=0.25,
    lifecycle_staging_chunks=2,
    slo_clients=120,
    slo_requests_per_client=4,
    slo_region_bytes=2 * MiB,
    slo_num_keys=256,
    slo_read_fraction=0.7,
    slo_checkpoint_fraction=0.05,
    slo_load_factors=(0.5, 0.8, 0.95),
    slo_target_factor=4.0,
    slo_workers=8,
    slo_seed=77,
)
