"""Checkpoint-lifecycle experiment: chains, async drain, crash-restart.

Runs the checkpoint loop in three flavours — ``full`` (physical copy
every epoch), ``incremental`` (the chain: dirty chunks written, the rest
linked to the prior epoch), and ``async`` (CoW snapshot + background
drain) — at replication r ∈ {1, 2}, then replays the interesting legs
under seeded faults:

- **mid-checkpoint crash at r=2** (incremental and async): the epoch must
  ride through on the client's retry/failover path and a cold-cache
  restart must restore bit-identical bytes (same digest as the no-fault
  baseline at the same mode);
- **mid-restore crash at r=1**: the restart must fail *cleanly* with a
  typed :class:`~repro.errors.RestoreError` naming the lost chunks;
- **abandoned async epoch at r=1**: a restart that targets an epoch whose
  drain never committed must fall back along the chain's parent link to
  the newest complete ancestor, and once the drain does commit the same
  epoch becomes restorable.

Every restore goes through a *fresh* NVMalloc context (cold caches), so
"restart latency" measures what a restarted node would actually pay.
All fault times derive from no-fault baseline phase windows via
:meth:`~repro.faults.FaultPlan.crash_in_phase` and a fixed seed; the
whole report digests bit-identically across repeats, hash seeds, and the
serial/parallel orchestrators.
"""

from __future__ import annotations

import hashlib
from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.core.nvmalloc import NVMalloc
from repro.errors import CheckpointError, ChunkUnavailableError, RestoreError
from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.faults import FaultPlan
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.sim.events import Event
from repro.util.units import KiB

#: Heartbeat period of the manager's monitor (virtual seconds).
MONITOR_INTERVAL = 0.025

#: Seed for every crash schedule in this experiment (distinct from the
#: faults experiment's seed so the two draw independent victims).
LIFECYCLE_SEED = 4321

#: Epochs the GC pass keeps (newest N of the chain).
GC_KEEP_LAST = 2

_TAG = "app"


@dataclass(frozen=True)
class _LegConfig:
    """One checkpoint-lifecycle run."""

    variable_bytes: int
    dram_state_bytes: int
    timesteps: int
    mutate_fraction: float
    mode: str  # "full" | "incremental" | "async"
    staging_bytes: int
    #: Initiate one extra async epoch and restore *before* its drain
    #: commits: the restart must fall back to the parent epoch.
    abandon_final: bool = False
    seed: int = 3


@dataclass
class _LegOutcome:
    """One leg's result: workload accounting plus store-side health."""

    status: str  # "ok" or the exception class name of a clean failure
    verified: bool
    ckpt_seconds: float
    restore_seconds: float
    bytes_written: float
    bytes_linked: float
    dirty_chunks: int
    total_chunks: int
    cow_captures: int
    chain_length: int
    gc_reclaimed: float
    epochs_committed: float
    retries: int
    failovers: float
    restored_epoch: int | None
    fallback: bool
    digest8: str
    error_epoch: int | None = None
    error_lost: int = 0
    windows: dict[str, tuple[float, float]] = field(default_factory=dict)


def _lifecycle_rank(
    ctx: RankContext, config: _LegConfig
) -> Generator[Event, object, dict[str, object]]:
    """The checkpoint loop, with per-phase windows for fault placement.

    Phases recorded in the returned ``windows``: ``ckpt{t}`` spans each
    epoch's checkpoint (initiation through drain for async), ``restore``
    spans the cold-cache restart restores at the end.
    """
    assert ctx.nvmalloc is not None
    lib = ctx.nvmalloc
    engine = ctx.engine
    rng = np.random.default_rng(config.seed)
    chunk = lib.chunk_size
    nbytes = config.variable_bytes
    nchunks = -(-nbytes // chunk)
    windows: dict[str, tuple[float, float]] = {}

    variable = yield from lib.ssdmalloc(nbytes, owner="ckpt")
    for i in range(nchunks):
        length = min(chunk, nbytes - i * chunk)
        yield from variable.write(i * chunk, bytes([i % 251]) * length)

    def mutate(step: int) -> Generator[Event, object, list[int]]:
        n_mutate = max(1, int(round(config.mutate_fraction * nchunks)))
        victims = sorted(
            int(v) for v in rng.choice(nchunks, size=n_mutate, replace=False)
        )
        for i in victims:
            length = min(chunk, nbytes - i * chunk)
            yield from variable.write(
                i * chunk, bytes([(i + step + 1) % 251]) * length
            )
        return victims

    def take_checkpoint(
        step: int,
    ) -> Generator[Event, object, tuple[object, int]]:
        """One epoch; returns ``(record, cow_captures)``."""
        dram_state = bytes([step % 251]) * config.dram_state_bytes
        if config.mode == "async":
            handle = yield from lib.ssdcheckpoint_async(
                _TAG, step, dram_state, [("var", variable)],
                staging_bytes=config.staging_bytes,
            )
            # Overlap writes racing the drain: touching a not-yet-drained
            # chunk forces a CoW capture; the checkpoint must still
            # freeze the bytes that existed at initiation.
            for i in victims:
                length = min(chunk, nbytes - i * chunk)
                yield from variable.write(
                    i * chunk, bytes([(i + step + 101) % 251]) * length
                )
            record = yield from handle.wait()
            return record, handle.cow_captures
        record = yield from lib.ssdcheckpoint(
            _TAG, step, dram_state, [("var", variable)], mode=config.mode
        )
        return record, 0

    expected: list[bytes] = []
    bytes_written = 0.0
    bytes_linked = 0.0
    dirty_chunks = 0
    total_chunks = 0
    cow_captures = 0
    loop_start = engine.now
    for t in range(config.timesteps):
        victims = yield from mutate(t)
        yield from ctx.compute(1e6)
        # The frozen contents this epoch must restore: read *before*
        # initiation (an async drain snapshots initiation-time bytes).
        snapshot = yield from variable.read(0, nbytes)
        expected.append(bytes(snapshot))
        start = engine.now
        record, cow = yield from take_checkpoint(t)
        windows[f"ckpt{t}"] = (start, engine.now)
        bytes_written += record.bytes_written
        bytes_linked += record.bytes_linked
        dirty_chunks += record.dirty_chunks
        total_chunks += record.total_chunks
        cow_captures += cow
    ckpt_seconds = engine.now - loop_start

    # Chain GC: everything but the newest GC_KEEP_LAST epochs goes.
    yield from lib.gc_checkpoints(_TAG, keep_last=GC_KEEP_LAST)

    extra_handle = None
    extra_expected = b""
    if config.abandon_final:
        # One more async epoch whose drain we deliberately do not join
        # before restoring: the restart below sees it uncommitted.
        t = config.timesteps
        victims = yield from mutate(t)
        yield from ctx.compute(1e6)
        snapshot = yield from variable.read(0, nbytes)
        extra_expected = bytes(snapshot)
        extra_handle = yield from lib.ssdcheckpoint_async(
            _TAG, t, bytes([t % 251]) * config.dram_state_bytes,
            [("var", variable)], staging_bytes=config.staging_bytes,
        )

    # Crash-restart: a fresh context with cold caches restores purely
    # from the manager-side commit records, as a restarted node would.
    restarted = NVMalloc(
        lib.node, lib.manager,
        fuse_cache_bytes=256 * KiB, page_cache_bytes=256 * KiB,
        chunk_size=lib.chunk_size, metrics=lib.metrics,
    )
    newest = config.timesteps - 1
    target = config.timesteps if config.abandon_final else None
    restore_start = engine.now
    dram_state, variables = yield from restarted.restore(_TAG, target)
    restored_epoch = restarted.last_restore_epoch
    fallback = restarted.last_restore_fallback
    verified = (
        restored_epoch == newest
        and dram_state == bytes([newest % 251]) * config.dram_state_bytes
        and variables["var"] == expected[newest]
    )
    digest8 = hashlib.sha256(
        bytes(dram_state) + bytes(variables["var"])
    ).hexdigest()[:8]
    if not config.abandon_final and config.timesteps >= 2:
        # The other GC survivor must restore its own frozen bytes too.
        prior, prior_vars = yield from restarted.restore(_TAG, newest - 1)
        verified &= (
            prior == bytes([(newest - 1) % 251]) * config.dram_state_bytes
            and prior_vars["var"] == expected[newest - 1]
        )
    windows["restore"] = (restore_start, engine.now)
    restore_seconds = engine.now - restore_start

    if extra_handle is not None:
        # Join the drain: the abandoned epoch commits, and the very
        # timestep that just fell back becomes restorable.
        yield from extra_handle.wait()
        dram_state, variables = yield from restarted.restore(
            _TAG, config.timesteps
        )
        verified &= (
            not restarted.last_restore_fallback
            and dram_state
            == bytes([config.timesteps % 251]) * config.dram_state_bytes
            and variables["var"] == extra_expected
        )

    yield from lib.ssdfree(variable)
    return {
        "verified": verified,
        "ckpt_seconds": ckpt_seconds,
        "restore_seconds": restore_seconds,
        "bytes_written": bytes_written,
        "bytes_linked": bytes_linked,
        "dirty_chunks": dirty_chunks,
        "total_chunks": total_chunks,
        "cow_captures": cow_captures,
        "restored_epoch": restored_epoch,
        "fallback": fallback,
        "digest8": digest8,
        "windows": windows,
    }


def _start_services(job: Job) -> None:
    """Spawn the store's background processes: heartbeat + repair."""
    manager = job.manager
    assert manager is not None
    job.engine.process(manager.monitor(MONITOR_INTERVAL, rounds=None))
    job.engine.process(manager.rereplicator())


def _leg_config(scale: ExperimentScale, mode: str, **kwargs) -> _LegConfig:
    return _LegConfig(
        variable_bytes=scale.lifecycle_variable,
        dram_state_bytes=scale.lifecycle_dram_state,
        timesteps=scale.lifecycle_timesteps,
        mutate_fraction=scale.lifecycle_mutate_fraction,
        mode=mode,
        staging_bytes=scale.lifecycle_staging_chunks * 256 * KiB,
        **kwargs,
    )


def _run_leg(
    scale: ExperimentScale,
    mode: str,
    replication: int,
    plan: FaultPlan | None,
    *,
    abandon_final: bool = False,
) -> _LegOutcome:
    """One fresh-testbed run of the lifecycle workload."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 4, remote_ssd=True, replication=replication)
    _start_services(job)
    if plan is not None:
        assert job.manager is not None
        testbed.engine.process(plan.inject(job.manager))
    config = _leg_config(scale, mode, abandon_final=abandon_final)
    ctx = job.rank_context(0)
    outcome: dict[str, object] = {}
    status = "ok"
    error_epoch: int | None = None
    error_lost = 0
    try:
        proc = testbed.engine.process(_lifecycle_rank(ctx, config))
        result = testbed.engine.run(proc)
        assert isinstance(result, dict)
        outcome = result
    except RestoreError as error:
        status = "RestoreError"
        error_epoch = error.epoch
        error_lost = len(error.lost_chunks)
    except (CheckpointError, ChunkUnavailableError) as error:
        status = type(error).__name__
    manager = job.manager
    assert manager is not None
    if status == "ok":
        quiesce = testbed.engine.process(manager.rereplication_quiesce())
        testbed.engine.run(quiesce)
    metrics = testbed.cluster.metrics
    return _LegOutcome(
        status=status,
        verified=bool(outcome.get("verified", False)),
        ckpt_seconds=float(outcome.get("ckpt_seconds", 0.0)),
        restore_seconds=float(outcome.get("restore_seconds", 0.0)),
        bytes_written=float(outcome.get("bytes_written", 0.0)),
        bytes_linked=float(outcome.get("bytes_linked", 0.0)),
        dirty_chunks=int(outcome.get("dirty_chunks", 0)),
        total_chunks=int(outcome.get("total_chunks", 0)),
        cow_captures=int(outcome.get("cow_captures", 0)),
        chain_length=manager.chain_length(_TAG),
        gc_reclaimed=metrics.value("store.manager.gc_reclaimed_bytes"),
        epochs_committed=metrics.value("checkpoint.epochs_committed"),
        retries=metrics.count("store.client.retries"),
        failovers=metrics.value("store.manager.benefactors_failed"),
        restored_epoch=outcome.get("restored_epoch"),  # type: ignore[arg-type]
        fallback=bool(outcome.get("fallback", False)),
        digest8=str(outcome.get("digest8", "-")),
        error_epoch=error_epoch,
        error_lost=error_lost,
        windows=dict(outcome.get("windows", {})),  # type: ignore[arg-type]
    )


def _benefactor_names(scale: ExperimentScale) -> list[str]:
    """Registration-ordered benefactor names (one throwaway testbed)."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 4, remote_ssd=True)
    assert job.manager is not None
    return [b.name for b in job.manager.benefactors()]


def _add_row(
    report: ExperimentReport,
    mode: str,
    replication: int,
    schedule: str,
    leg: _LegOutcome,
) -> None:
    report.add_row(
        mode, replication, schedule, leg.status,
        round(leg.ckpt_seconds, 6),
        round(leg.restore_seconds, 6) if leg.status == "ok" else "-",
        round(leg.bytes_written / KiB, 1),
        round(leg.bytes_linked / KiB, 1),
        leg.chain_length,
        round(leg.gc_reclaimed / KiB, 1),
        int(leg.epochs_committed),
        leg.retries,
        int(leg.failovers),
        leg.digest8 if leg.status == "ok" else "-",
    )


def ckpt_lifecycle(scale: ExperimentScale = SMALL) -> ExperimentReport:
    """Checkpoint chains, async drain, and crash-restart recovery."""
    report = ExperimentReport(
        experiment="Checkpoint lifecycle (§III-E)",
        title="Incremental CoW chains, async drain, crash-restart recovery",
        headers=[
            "Mode", "r", "Schedule", "Status", "Ckpt (s)", "Restore (s)",
            "Written KiB", "Linked KiB", "Chain", "GC KiB", "Epochs",
            "Retries", "Failovers", "Digest",
        ],
    )
    names = _benefactor_names(scale)
    mid = scale.lifecycle_timesteps // 2

    # --- no-fault grid: mode x replication -----------------------------
    base: dict[tuple[str, int], _LegOutcome] = {}
    for mode in ("full", "incremental", "async"):
        for replication in (1, 2):
            leg = _run_leg(scale, mode, replication, None)
            base[(mode, replication)] = leg
            report.verified &= leg.status == "ok" and leg.verified
            # Chain bookkeeping: GC kept exactly the newest epochs, every
            # leg reclaimed superseded chunks, every epoch committed.
            report.verified &= (
                leg.chain_length == GC_KEEP_LAST
                and leg.gc_reclaimed > 0
                and leg.epochs_committed >= scale.lifecycle_timesteps
            )
            _add_row(report, mode, replication, "none", leg)
    for replication in (1, 2):
        # The chain's reason to exist: strictly fewer bytes than full
        # copies, for both the synchronous and the asynchronous flavour.
        full = base[("full", replication)]
        report.verified &= (
            base[("incremental", replication)].bytes_written
            < full.bytes_written
        )
        report.verified &= (
            base[("async", replication)].bytes_written < full.bytes_written
        )
        # Overlap writes raced the drain and forced CoW captures.
        report.verified &= base[("async", replication)].cow_captures >= 1

    # --- mid-checkpoint crash at r=2: ride through, same digest --------
    for mode in ("incremental", "async"):
        baseline = base[(mode, 2)]
        plan = FaultPlan.crash_in_phase(
            LIFECYCLE_SEED, names, baseline.windows, f"ckpt{mid}",
            position=(0.25, 0.75),
        )
        leg = _run_leg(scale, mode, 2, plan)
        report.verified &= (
            leg.status == "ok"
            and leg.verified
            and leg.failovers >= 1
            and leg.digest8 == baseline.digest8
        )
        _add_row(report, mode, 2, plan.describe(), leg)

    # --- mid-restore crash at r=1: clean typed failure ------------------
    baseline = base[("incremental", 1)]
    plan = FaultPlan.crash_in_phase(
        LIFECYCLE_SEED, names, baseline.windows, "restore",
        position=(0.0, 0.05),
    )
    leg = _run_leg(scale, "incremental", 1, plan)
    report.verified &= (
        leg.status == "RestoreError"
        and leg.error_epoch is not None
        and leg.error_lost >= 1
    )
    _add_row(report, "incremental", 1, plan.describe(), leg)

    # --- abandoned async epoch at r=1: truncated-chain fallback ---------
    leg = _run_leg(scale, "async", 1, None, abandon_final=True)
    report.verified &= (
        leg.status == "ok"
        and leg.verified
        and leg.fallback
        and leg.restored_epoch == scale.lifecycle_timesteps - 1
        and leg.digest8 == base[("async", 1)].digest8
    )
    _add_row(report, "async", 1, "abandon drain", leg)

    report.claim(
        "§III-E: incremental chains write only dirty chunks, checkpoints "
        "drain asynchronously behind the app, and a restart recovers the "
        "newest complete epoch even when crashes truncate the chain",
        "incremental and async epochs wrote strictly fewer bytes than "
        "full copies with GC reclaiming superseded chunks; r=2 rode "
        "mid-checkpoint crashes through failover with bit-identical "
        "restored digests; an r=1 mid-restore crash failed with a typed "
        "RestoreError and an uncommitted drain fell back to its parent",
    )
    return report
