"""Provisioning-cost analysis (the paper's §I / R-SSD(8:8:1) argument).

The paper closes Fig. 3 with: "by adding one $300 SSD drive to every 8
compute nodes ... we can bring about a 32.47% performance improvement
while running on half the nodes ... future machines can reduce the total
provisioning cost by purchasing a combination of DRAM and NVM and use
them in concert."  This driver makes that argument quantitative for the
reproduced MM runs: memory-subsystem dollars (Table I prices), node-hours
consumed (the "supercomputer allocation" currency), and their product.
"""

from __future__ import annotations

from repro.devices.specs import DDR3_1600, INTEL_X25E
from repro.experiments.configs import SMALL, ExperimentScale
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.util.units import GiB
from repro.workloads.matmul import MatmulConfig, run_matmul

#: Table I: $150 per 16 GB DDR3-1600 DIMM.
DRAM_DOLLARS_PER_GIB = DDR3_1600.cost_usd / (DDR3_1600.capacity / GiB)


def memory_subsystem_cost(
    num_nodes: int, dram_per_node_gib: float, num_ssds: int
) -> float:
    """Dollars of DRAM + SSD across the partition (Table I prices)."""
    return (
        num_nodes * dram_per_node_gib * DRAM_DOLLARS_PER_GIB
        + num_ssds * INTEL_X25E.cost_usd
    )


def cost_analysis(
    scale: ExperimentScale = SMALL,
    *,
    paper_dram_per_node_gib: float = 8.0,
) -> ExperimentReport:
    """MM runtime vs provisioning cost across DRAM/NVM mixes.

    Costs are computed at *paper-scale* provisioning (8 GB DRAM/node,
    one 32 GB X25-E per equipped node) while runtimes come from the
    scaled simulation — the comparison is between configurations, so the
    common scaling divides out.
    """
    report = ExperimentReport(
        experiment="Cost analysis (§I, Fig. 3 discussion)",
        title="MM runtime vs memory-subsystem provisioning cost",
        headers=[
            "Config", "Nodes", "SSDs", "Memory cost ($)",
            "Runtime (s)", "Node-seconds", "Cost x node-seconds",
        ],
    )
    grid = [
        (2, 16, 0, False),  # DRAM-only baseline
        (8, 16, 16, False),  # every node equipped
        (8, 8, 8, True),  # half the nodes + 8 remote SSDs
        (8, 8, 1, True),  # half the nodes + one shared SSD
    ]
    rows: dict[str, tuple[float, float, float]] = {}
    for x, y, z, remote in grid:
        testbed = Testbed(scale)
        job = testbed.job(x, y, z, remote_ssd=remote)
        result = run_matmul(
            job,
            testbed.pfs,
            MatmulConfig(
                n=scale.matrix_n, tile=scale.matrix_tile,
                b_placement="nvm" if z else "dram",
            ),
        )
        report.verified &= result.verified
        # Node count includes remote benefactor hosts: they are real
        # machines the center must provision.
        nodes = y + (z if remote else 0)
        cost = memory_subsystem_cost(nodes, paper_dram_per_node_gib, z)
        node_seconds = y * result.total  # the job's allocation charge
        rows[result.job_label] = (cost, result.total, node_seconds)
        report.add_row(
            result.job_label, nodes, z, cost, result.total,
            node_seconds, cost * node_seconds,
        )
    dram_cost, dram_time, dram_ns = rows["DRAM(2:16:0)"]
    cheap_cost, cheap_time, cheap_ns = rows["R-SSD(8:8:1)"]
    report.claim(
        "one SSD per 8 nodes beats DRAM-only on half the node allocation: "
        "a combination of DRAM and NVM reduces provisioning cost",
        f"R-SSD(8:8:1) uses {100 * cheap_ns / dram_ns:.0f}% of the "
        f"node-seconds at {100 * cheap_cost / dram_cost:.0f}% of the "
        "memory-subsystem cost of DRAM(2:16:0)",
    )
    return report
