"""Switched fabric connecting cluster nodes."""

from __future__ import annotations

from collections.abc import Generator

from repro.errors import NetworkError
from repro.network.link import NIC, LinkSpec
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder


class Network:
    """A non-blocking switch interconnecting named endpoints.

    A transfer occupies the sender's TX port and the receiver's RX port for
    the message's wire time; the switch backplane itself is non-blocking
    (as HAL's Ethernet switch effectively is at 16 ports).  Same-endpoint
    transfers are free: locality is decided by the caller, which models
    local SSD access bypassing the network entirely.
    """

    def __init__(
        self,
        engine: Engine,
        spec: LinkSpec,
        *,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._nics: dict[str, NIC] = {}
        # (src, dst) -> (tx resource, rx resource, counter objects);
        # transfers are hot enough that per-call NIC lookups and counter
        # name formatting show up in profiles.
        self._pair_state: dict[tuple[str, str], tuple] = {}
        self._transfer_time = spec.transfer_time
        self._timeout = engine.timeout

    def attach(self, endpoint: str) -> NIC:
        """Register ``endpoint`` and give it a NIC."""
        if endpoint in self._nics:
            raise NetworkError(f"endpoint {endpoint!r} already attached")
        nic = NIC(self.engine, self.spec, endpoint)
        self._nics[endpoint] = nic
        return nic

    def nic(self, endpoint: str) -> NIC:
        """The NIC attached for ``endpoint`` (raises for unknown names)."""
        try:
            return self._nics[endpoint]
        except KeyError:
            raise NetworkError(f"unknown endpoint {endpoint!r}") from None

    # ------------------------------------------------------------------
    def transfer(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_transfer_impl`, spanned when tracing is on.

        Node-local transfers (``src == dst``) are never spanned: they
        involve no network and yield no events.
        """
        gen = self._transfer_impl(src, dst, nbytes)
        tracer = self.engine.tracer
        if tracer is None or src == dst:
            return gen
        return tracer.wrap(
            "net", "transfer", gen, src=src, dst=dst, bytes=nbytes
        )

    def _transfer_impl(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Event, object, None]:
        """Process generator: move ``nbytes`` from ``src`` to ``dst``.

        Ports are acquired TX-then-RX (a fixed global order, so concurrent
        transfers cannot deadlock) and held together for the wire time.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transfer size {nbytes}")
        if src == dst:
            return  # node-local: no network involvement
        state = self._pair_state.get((src, dst))
        if state is None:
            metrics = self.metrics
            state = self._pair_state[(src, dst)] = (
                self.nic(src).tx,
                self.nic(dst).rx,
                (
                    metrics.counter("network.bytes"),
                    metrics.counter(f"network.{src}.tx.bytes"),
                    metrics.counter(f"network.{dst}.rx.bytes"),
                ),
            )
        tx, rx, counters = state
        tx_req = tx.acquire_now()
        if tx_req is None:
            tx_req = tx.request()
            yield tx_req
        rx_req = rx.acquire_now()
        try:
            if rx_req is None:
                rx_req = rx.request()
                yield rx_req
            try:
                c_net, c_tx, c_rx = counters
                c_net.total += nbytes
                c_net.count += 1
                c_tx.total += nbytes
                c_tx.count += 1
                c_rx.total += nbytes
                c_rx.count += 1
                yield self._timeout(self._transfer_time(nbytes))
            finally:
                rx.release(rx_req)
        finally:
            tx.release(tx_req)

    def total_bytes(self) -> float:
        """All bytes that crossed the fabric so far."""
        return self.metrics.value("network.bytes")
