"""Switched fabric connecting cluster nodes."""

from __future__ import annotations

from collections.abc import Generator

from repro.errors import NetworkError
from repro.network.link import NIC, LinkSpec
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder


class Network:
    """A non-blocking switch interconnecting named endpoints.

    A transfer occupies the sender's TX port and the receiver's RX port for
    the message's wire time; the switch backplane itself is non-blocking
    (as HAL's Ethernet switch effectively is at 16 ports).  Same-endpoint
    transfers are free: locality is decided by the caller, which models
    local SSD access bypassing the network entirely.
    """

    def __init__(
        self,
        engine: Engine,
        spec: LinkSpec,
        *,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._nics: dict[str, NIC] = {}
        # (src, dst) -> resolved counter objects; transfers are hot
        # enough that per-call name formatting shows up in profiles.
        self._pair_counters: dict[str, object] = {}

    def attach(self, endpoint: str) -> NIC:
        """Register ``endpoint`` and give it a NIC."""
        if endpoint in self._nics:
            raise NetworkError(f"endpoint {endpoint!r} already attached")
        nic = NIC(self.engine, self.spec, endpoint)
        self._nics[endpoint] = nic
        return nic

    def nic(self, endpoint: str) -> NIC:
        """The NIC attached for ``endpoint`` (raises for unknown names)."""
        try:
            return self._nics[endpoint]
        except KeyError:
            raise NetworkError(f"unknown endpoint {endpoint!r}") from None

    # ------------------------------------------------------------------
    def transfer(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Event, object, None]:
        """Process generator: move ``nbytes`` from ``src`` to ``dst``.

        Ports are acquired TX-then-RX (a fixed global order, so concurrent
        transfers cannot deadlock) and held together for the wire time.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transfer size {nbytes}")
        if src == dst:
            return  # node-local: no network involvement
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        tx_req = src_nic.tx.request()
        yield tx_req
        rx_req = dst_nic.rx.request()
        try:
            yield rx_req
            try:
                duration = self.spec.transfer_time(nbytes)
                counters = self._pair_counters.get((src, dst))
                if counters is None:
                    metrics = self.metrics
                    counters = self._pair_counters[(src, dst)] = (
                        metrics.counter("network.bytes"),
                        metrics.counter(f"network.{src}.tx.bytes"),
                        metrics.counter(f"network.{dst}.rx.bytes"),
                    )
                for counter in counters:
                    counter.total += nbytes
                    counter.count += 1
                yield self.engine.timeout(duration)
            finally:
                dst_nic.rx.release(rx_req)
        finally:
            src_nic.tx.release(tx_req)

    def total_bytes(self) -> float:
        """All bytes that crossed the fabric so far."""
        return self.metrics.value("network.bytes")
