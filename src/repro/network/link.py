"""Network interface model: full-duplex ports with FIFO service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.util.units import MB


@dataclass(frozen=True)
class LinkSpec:
    """Static characteristics of a network port."""

    name: str
    bandwidth: float  # bytes/second each direction
    latency: float  # seconds one-way per message

    def transfer_time(self, nbytes: int) -> float:
        """One-way wire time for a message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth


# Ethernet payload efficiency ~94% of line rate.
GIGE = LinkSpec(name="GigE", bandwidth=117 * MB, latency=50e-6)
BONDED_DUAL_GIGE = LinkSpec(
    name="Bonded dual GigE", bandwidth=234 * MB, latency=50e-6
)
TEN_GIGE = LinkSpec(name="10GigE", bandwidth=1_170 * MB, latency=10e-6)


class NIC:
    """A full-duplex network interface: independent TX and RX queues."""

    def __init__(self, engine: Engine, spec: LinkSpec, name: str) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name
        self.tx = Resource(engine, capacity=1, name=f"{name}.tx")
        self.rx = Resource(engine, capacity=1, name=f"{name}.rx")

    def __repr__(self) -> str:
        return f"<NIC {self.name} {self.spec.name}>"
