"""Interconnect model: NICs, a switched fabric, and transfer accounting.

HAL's bonded dual Gigabit Ethernet (Table II) becomes per-node full-duplex
NICs attached to a non-blocking switch; contention emerges from FIFO
queueing at the sender's TX and receiver's RX ports, which is exactly where
the paper's R-SSD(8:8:1) fan-in pressure materializes.
"""

from repro.network.link import NIC, LinkSpec, BONDED_DUAL_GIGE, GIGE, TEN_GIGE
from repro.network.fabric import Network

__all__ = [
    "BONDED_DUAL_GIGE",
    "GIGE",
    "LinkSpec",
    "NIC",
    "Network",
    "TEN_GIGE",
]
