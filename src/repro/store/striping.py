"""Chunk placement policies.

The manager stripes a new file's chunks across benefactors.  Round-robin is
the paper's default; local-first prefers a benefactor co-located with the
requesting client (the L-SSD configurations), falling back to round-robin
for chunks beyond the local contribution.
"""

from __future__ import annotations

import abc

from repro.errors import StoreError
from repro.store.benefactor import Benefactor


class StripingPolicy(abc.ABC):
    """Chooses a benefactor for each chunk of a new file."""

    @abc.abstractmethod
    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        """A benefactor per chunk index, honouring available space."""


def _spread(
    candidates: list[Benefactor], num_chunks: int, chunk_size: int
) -> list[Benefactor]:
    """Round-robin over ``candidates``, skipping full benefactors."""
    budgets = {b.name: b.available // chunk_size for b in candidates}
    placement: list[Benefactor] = []
    cursor = 0
    for _ in range(num_chunks):
        for _attempt in range(len(candidates)):
            benefactor = candidates[cursor % len(candidates)]
            cursor += 1
            if budgets[benefactor.name] > 0:
                budgets[benefactor.name] -= 1
                placement.append(benefactor)
                break
        else:
            raise StoreError(
                f"aggregate store full: cannot place chunk {len(placement)} "
                f"of {num_chunks}"
            )
    return placement


class RoundRobinStriping(StripingPolicy):
    """Stripe chunks across all online benefactors in turn."""

    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        online = [b for b in benefactors if b.online]
        if not online:
            raise StoreError("no online benefactors")
        return _spread(online, num_chunks, chunk_size)


class LocalFirstStriping(StripingPolicy):
    """Place as much as possible on the client's own node, then spread."""

    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        online = [b for b in benefactors if b.online]
        if not online:
            raise StoreError("no online benefactors")
        local = [b for b in online if b.name == client]
        placement: list[Benefactor] = []
        if local:
            budget = local[0].available // chunk_size
            placement.extend(local[0] for _ in range(min(budget, num_chunks)))
        remaining = num_chunks - len(placement)
        if remaining:
            others = [b for b in online if b.name != client] or online
            placement.extend(_spread(others, remaining, chunk_size))
        return placement
