"""Chunk placement policies.

The manager stripes a new file's chunks across benefactors.  Round-robin is
the paper's default; local-first prefers a benefactor co-located with the
requesting client (the L-SSD configurations), falling back to round-robin
for chunks beyond the local contribution.
"""

from __future__ import annotations

import abc

from repro.errors import ReplicationError, StoreError
from repro.store.benefactor import Benefactor


class StripingPolicy(abc.ABC):
    """Chooses a benefactor for each chunk of a new file."""

    @abc.abstractmethod
    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        """A benefactor per chunk index, honouring available space."""

    def place_replicas(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
        replication: int = 2,
    ) -> list[list[Benefactor]]:
        """Replica groups per chunk index: ``replication`` *distinct*
        benefactors each, the policy-preferred one first.

        Capacity is accounted per replica — every copy of a chunk debits
        its benefactor's budget.  ``replication=1`` degenerates to
        exactly :meth:`place` (the seed's bit-identical behaviour).
        """
        if replication <= 1:
            return [[b] for b in self.place(benefactors, num_chunks, chunk_size, client)]
        online = [b for b in benefactors if b.online]
        if len(online) < replication:
            raise ReplicationError(
                f"replication={replication} needs that many distinct online "
                f"benefactors, only {len(online)} available"
            )
        primaries = self.place(benefactors, num_chunks, chunk_size, client)
        budgets = {b.name: b.available // chunk_size for b in online}
        placement: list[list[Benefactor]] = []
        cursor = 0
        for primary in primaries:
            if budgets[primary.name] <= 0:
                raise ReplicationError(
                    f"aggregate store full: no room for primary of chunk "
                    f"{len(placement)} once replicas are accounted"
                )
            budgets[primary.name] -= 1
            replicas = [primary]
            chosen = {primary.name}
            for _ in range(replication - 1):
                for _attempt in range(len(online)):
                    candidate = online[cursor % len(online)]
                    cursor += 1
                    if candidate.name in chosen or budgets[candidate.name] <= 0:
                        continue
                    budgets[candidate.name] -= 1
                    replicas.append(candidate)
                    chosen.add(candidate.name)
                    break
                else:
                    raise ReplicationError(
                        f"aggregate store full: cannot place replica "
                        f"{len(replicas)} of chunk {len(placement)} "
                        f"({num_chunks} chunks at replication={replication})"
                    )
            placement.append(replicas)
        return placement


def _spread(
    candidates: list[Benefactor], num_chunks: int, chunk_size: int
) -> list[Benefactor]:
    """Round-robin over ``candidates``, skipping full benefactors."""
    budgets = {b.name: b.available // chunk_size for b in candidates}
    placement: list[Benefactor] = []
    cursor = 0
    for _ in range(num_chunks):
        for _attempt in range(len(candidates)):
            benefactor = candidates[cursor % len(candidates)]
            cursor += 1
            if budgets[benefactor.name] > 0:
                budgets[benefactor.name] -= 1
                placement.append(benefactor)
                break
        else:
            raise StoreError(
                f"aggregate store full: cannot place chunk {len(placement)} "
                f"of {num_chunks}"
            )
    return placement


class RoundRobinStriping(StripingPolicy):
    """Stripe chunks across all online benefactors in turn."""

    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        online = [b for b in benefactors if b.online]
        if not online:
            raise StoreError("no online benefactors")
        return _spread(online, num_chunks, chunk_size)


class LocalFirstStriping(StripingPolicy):
    """Place as much as possible on the client's own node, then spread."""

    def place(
        self,
        benefactors: list[Benefactor],
        num_chunks: int,
        chunk_size: int,
        client: str,
    ) -> list[Benefactor]:
        online = [b for b in benefactors if b.online]
        if not online:
            raise StoreError("no online benefactors")
        local = [b for b in online if b.name == client]
        placement: list[Benefactor] = []
        if local:
            budget = local[0].available // chunk_size
            placement.extend(local[0] for _ in range(min(budget, num_chunks)))
        remaining = num_chunks - len(placement)
        if remaining:
            others = [b for b in online if b.name != client] or online
            placement.extend(_spread(others, remaining, chunk_size))
        return placement
