"""Manager: the metadata brain of the aggregate NVM store.

Tracks benefactors and logical files, performs space allocation and chunk
striping at file-creation time (a pure reservation — ``posix_fallocate``
semantics, no data transfer), resolves chunk locations for clients, and
reference-counts chunks so that checkpoint files can *link* the chunks of
memory-mapped variables instead of copying them (paper §III-E).  When a
linked chunk is subsequently modified, the write path asks the manager for
a copy-on-write replacement, preserving the checkpoint's frozen view.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.cluster.node import Node
from repro.errors import (
    BenefactorDownError,
    ChunkNotFoundError,
    ChunkUnavailableError,
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    StoreError,
)
from repro.sim.events import Event
from repro.store.benefactor import Benefactor
from repro.store.chunk import CHUNK_SIZE, CONTROL_MESSAGE_BYTES, chunk_count
from repro.store.striping import RoundRobinStriping, StripingPolicy
from repro.util.recorder import MetricsRecorder


@dataclass
class FileMeta:
    """Metadata for one logical file in the aggregate store."""

    name: str
    size: int
    chunk_ids: list[int] = field(default_factory=list)
    # Bumped whenever the chunk map changes (COW); clients use it to
    # invalidate their cached maps, modelling lease/callback invalidation.
    generation: int = 0

    @property
    def num_chunks(self) -> int:
        """Number of chunks backing the file."""
        return len(self.chunk_ids)


@dataclass
class EpochRecord:
    """Manager-side commit record for one checkpoint epoch (paper §III-E).

    ``parent`` is the newest epoch that was *committed* when this one
    began — the fallback target when a crash truncates this epoch before
    its commit record lands.  ``sections`` stores the checkpoint layout
    ``(name, offset, length, linked)`` at commit time so a restarted
    context (fresh caches, no client-side records) can restore from
    manager metadata alone.  ``pins`` counts in-flight restores; a
    pinned epoch is never garbage-collected.
    """

    tag: str
    epoch: int
    path: str
    mode: str
    parent: int | None
    committed: bool = False
    sections: tuple[tuple[str, int, int, bool], ...] = ()
    pins: int = 0


class Manager:
    """Aggregate-store coordinator, hosted on one cluster node.

    Control traffic (create/resolve/link/delete) crosses the network as
    small RPC messages; chunk payloads never pass through the manager —
    clients connect to benefactors directly, as in the paper.
    """

    def __init__(
        self,
        node: Node,
        *,
        chunk_size: int = CHUNK_SIZE,
        striping: StripingPolicy | None = None,
        metrics: MetricsRecorder | None = None,
        replication: int = 1,
    ) -> None:
        if replication < 1:
            raise StoreError(f"replication degree must be >= 1, got {replication}")
        self.node = node
        self.chunk_size = chunk_size
        self.striping = striping if striping is not None else RoundRobinStriping()
        self.metrics = metrics if metrics is not None else node.metrics
        self.replication = replication
        self._benefactors: dict[str, Benefactor] = {}
        self._files: dict[str, FileMeta] = {}
        self._chunk_ids = itertools.count(1)
        # Replica lists per chunk, policy-preferred benefactor first.  At
        # replication=1 every list is a singleton and behaviour is
        # bit-identical to the unreplicated seed.
        self._chunk_replicas: dict[int, list[Benefactor]] = {}
        self._chunk_refs: dict[int, int] = {}
        # Reverse indexes for failure handling: which chunks live on each
        # benefactor, and which files reference each chunk (for lease
        # invalidation via generation bumps).
        self._benefactor_chunks: dict[str, set[int]] = {}
        self._chunk_files: dict[int, set[str]] = {}
        # Fault-tolerance state: benefactors already forfeited, chunks
        # awaiting re-replication, chunks that cannot make progress until
        # capacity returns, and chunks whose every replica is gone.
        self._forfeited: set[str] = set()
        self._degraded: deque[int] = deque()
        self._stalled: list[int] = []
        self._lost: set[int] = set()
        self._rereplication_inflight = 0
        self._rereplication_wakeup = None
        self._idle_waiters: list[Event] = []
        # Chunks whose refcount hit zero while a re-replication fill was
        # mid-flight: the physical free is deferred until the fill
        # settles (value: whether the release was GC-attributed).
        self._deferred_release: dict[int, bool] = {}
        # Last-known replica names of each lost chunk, recorded at loss
        # time so errors can report *where* the data used to live.
        self._lost_replicas: dict[int, tuple[str, ...]] = {}
        # Checkpoint epoch chains per tag: the manager-side commit
        # records that crash-restart recovery resolves against.
        self._epochs: dict[str, dict[int, EpochRecord]] = {}

    @property
    def name(self) -> str:
        """The node hosting the manager."""
        return self.node.name

    # ------------------------------------------------------------------
    # Benefactor registry and monitoring
    # ------------------------------------------------------------------
    def register_benefactor(self, benefactor: Benefactor) -> None:
        """Add a benefactor to the aggregate store."""
        if benefactor.name in self._benefactors:
            raise StoreError(f"benefactor {benefactor.name} already registered")
        self._benefactors[benefactor.name] = benefactor
        self._requeue_stalled()

    def benefactors(self) -> list[Benefactor]:
        """All registered benefactors."""
        return list(self._benefactors.values())

    def online_benefactors(self) -> list[Benefactor]:
        """Benefactors currently in service."""
        return [b for b in self._benefactors.values() if b.online]

    def mark_offline(self, name: str) -> None:
        """Take a benefactor out of service.

        Administrative offlining (the node is *not* crashed) keeps its
        reservations and replica membership: the benefactor may return
        via :meth:`mark_online` with its data intact, and resolution
        merely raises :class:`BenefactorDownError` meanwhile.

        Offlining a **crashed** benefactor forfeits it: every reservation
        it held is released, it is struck from every chunk's replica
        list, chunks with surviving replicas are queued for background
        re-replication, and chunks with none are declared lost.
        """
        benefactor = self._benefactor(name)
        benefactor.online = False
        if benefactor.crashed and name not in self._forfeited:
            self._forfeit(benefactor)

    def mark_online(self, name: str) -> None:
        """Return an administratively offline benefactor to service."""
        self._benefactor(name).online = True
        self._requeue_stalled()

    def _benefactor(self, name: str) -> Benefactor:
        try:
            return self._benefactors[name]
        except KeyError:
            raise StoreError(f"unknown benefactor {name!r}") from None

    def monitor(
        self, interval: float, *, rounds: int | None = None
    ) -> Generator[Event, object, int]:
        """Benefactor status monitoring (paper §II): a heartbeat process.

        Every ``interval`` virtual seconds, pings each in-service
        benefactor with a control message; crashed benefactors are taken
        out of service so chunk resolution fails fast and new allocations
        avoid them.  Runs ``rounds`` times (forever when ``None``; spawn
        via ``engine.process`` and stop with ``Process.interrupt``).
        Returns the number of benefactors it marked offline.
        """
        marked = 0
        count = 0
        while rounds is None or count < rounds:
            yield self.node.engine.timeout(interval)
            count += 1
            for benefactor in list(self._benefactors.values()):
                if not benefactor.online:
                    continue
                yield from self.node.network.transfer(
                    self.name, benefactor.name, CONTROL_MESSAGE_BYTES
                )
                if benefactor.crashed:
                    self.mark_offline(benefactor.name)  # forfeits: see there
                    marked += 1
                else:
                    yield from self.node.network.transfer(
                        benefactor.name, self.name, CONTROL_MESSAGE_BYTES
                    )
        return marked

    # ------------------------------------------------------------------
    # Failure handling and background re-replication (paper §III-E)
    # ------------------------------------------------------------------
    def report_failure(
        self, client: str, name: str
    ) -> Generator[Event, object, bool]:
        """Dispatch :meth:`_report_failure_impl`, spanned when tracing is on."""
        gen = self._report_failure_impl(client, name)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "store.manager", "report_failure", gen,
            client=client, benefactor=name,
        )

    def _report_failure_impl(
        self, client: str, name: str
    ) -> Generator[Event, object, bool]:
        """A client reports a failed data operation against benefactor
        ``name``.

        One control round trip.  The manager trusts but verifies: only a
        benefactor that really crashed is failed over (a merely slow or
        administratively offline node is left alone).  Returns ``True``
        when the report took the benefactor out of service.
        """
        yield from self.node.network.transfer(
            client, self.name, CONTROL_MESSAGE_BYTES
        )
        benefactor = self._benefactor(name)
        failed = False
        if benefactor.crashed and name not in self._forfeited:
            self.mark_offline(name)
            failed = True
        yield from self.node.network.transfer(
            self.name, client, CONTROL_MESSAGE_BYTES
        )
        return failed

    def _forfeit(self, benefactor: Benefactor) -> None:
        """Strike a crashed benefactor from the store's books."""
        self._forfeited.add(benefactor.name)
        chunk_ids = sorted(self._benefactor_chunks.pop(benefactor.name, ()))
        for chunk_id in chunk_ids:
            replicas = self._chunk_replicas[chunk_id]
            replicas.remove(benefactor)
            benefactor.abort_fill(chunk_id)
            benefactor.unreserve(self.chunk_size)
            if self._chunk_refs.get(chunk_id, 0) <= 0:
                # Logically deleted already; its physical free was
                # deferred behind an in-flight fill.  The crash resolved
                # that race — finish the free unless another replica is
                # still filling.
                if not any(b.filling(chunk_id) for b in replicas):
                    self._free_chunk(
                        chunk_id, gc=self._deferred_release.get(chunk_id, False)
                    )
                continue
            survivors = [b for b in replicas if not b.crashed]
            if survivors:
                self.metrics.add("store.manager.chunks_degraded")
                self._degraded.append(chunk_id)
            else:
                self._lost.add(chunk_id)
                self._lost_replicas[chunk_id] = tuple(
                    sorted({benefactor.name, *(b.name for b in replicas)})
                )
                self.metrics.add("store.manager.chunks_lost")
            self._bump_files(chunk_id)
        self.metrics.add("store.manager.benefactors_failed")
        self._wake_rereplicator()

    def _bump_files(self, chunk_id: int) -> None:
        """Invalidate client map leases for every file using ``chunk_id``."""
        for file_name in self._chunk_files.get(chunk_id, ()):
            meta = self._files.get(file_name)
            if meta is not None:
                meta.generation += 1

    def _requeue_stalled(self) -> None:
        """Capacity returned: retry chunks whose re-replication stalled."""
        if self._stalled:
            self._degraded.extend(self._stalled)
            self._stalled.clear()
            self._wake_rereplicator()

    def _wake_rereplicator(self) -> None:
        wakeup = self._rereplication_wakeup
        if wakeup is not None:
            self._rereplication_wakeup = None
            wakeup.succeed()

    def _notify_idle(self) -> None:
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            waiter.succeed()

    @property
    def rereplication_pending(self) -> int:
        """Chunks queued or mid-copy (stalled chunks not included)."""
        return len(self._degraded) + self._rereplication_inflight

    @property
    def rereplication_stalled(self) -> int:
        """Degraded chunks that cannot be re-replicated until capacity
        or an offline survivor returns."""
        return len(self._stalled)

    def lost_chunks(self, name: str) -> tuple[int, ...]:
        """Sorted chunk ids of ``name`` whose every replica is gone."""
        meta = self.lookup(name)
        if not self._lost:
            return ()
        return tuple(sorted(set(meta.chunk_ids) & self._lost))

    def lost_replicas(self, chunk_id: int) -> tuple[str, ...]:
        """Last-known replica names of a lost chunk (empty if unknown)."""
        return self._lost_replicas.get(chunk_id, ())

    def under_replicated(self) -> tuple[int, ...]:
        """Sorted ids of live chunks below the configured degree.

        Empty once background re-replication has fully restored
        redundancy (lost chunks are not *under*-replicated; they are
        gone, see :meth:`lost_chunks`; chunks awaiting a deferred free
        are logically deleted and not counted either).
        """
        return tuple(
            sorted(
                chunk_id
                for chunk_id, replicas in self._chunk_replicas.items()
                if chunk_id not in self._lost
                and self._chunk_refs.get(chunk_id, 0) > 0
                and sum(1 for b in replicas if not b.crashed) < self.replication
            )
        )

    def rereplicator(self) -> Generator[Event, object, None]:
        """Background redundancy-repair process (spawn via
        ``engine.process``).

        Sleeps on a wakeup event until a failure enqueues degraded
        chunks, then drains the queue one copy at a time: fetch from the
        first readable surviving replica, stream to a fresh benefactor
        (real network + SSD charges), and register the new replica.
        Chunks that cannot make progress (no readable source or no
        target with space) park in a stalled list re-queued by
        :meth:`register_benefactor`/:meth:`mark_online`.
        """
        while True:
            if not self._degraded:
                self._notify_idle()
                wakeup = self.node.engine.event()
                self._rereplication_wakeup = wakeup
                yield wakeup
                continue
            yield from self.rereplicate_pending()

    def rereplicate_pending(self) -> Generator[Event, object, int]:
        """Drain the current re-replication queue; returns chunks repaired.

        The bounded building block behind :meth:`rereplicator`, also
        usable directly from tests and drivers.
        """
        repaired = 0
        while self._degraded:
            chunk_id = self._degraded.popleft()
            self._rereplication_inflight += 1
            try:
                repaired += yield from self._rereplicate_chunk(chunk_id)
            finally:
                self._rereplication_inflight -= 1
        if not self._degraded:
            self._notify_idle()
        return repaired

    def rereplication_quiesce(self) -> Generator[Event, object, None]:
        """Wait until the re-replication queue is fully drained."""
        while self.rereplication_pending:
            waiter = self.node.engine.event()
            self._idle_waiters.append(waiter)
            yield waiter

    def _rereplicate_chunk(
        self, chunk_id: int
    ) -> Generator[Event, object, int]:
        """Dispatch :meth:`_rereplicate_chunk_impl`, spanned when tracing is on."""
        gen = self._rereplicate_chunk_impl(chunk_id)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "store.manager", "rereplicate", gen, chunk=chunk_id
        )

    def _rereplicate_chunk_impl(
        self, chunk_id: int
    ) -> Generator[Event, object, int]:
        """Restore one chunk's replication degree; returns 1 on success."""
        if chunk_id in self._lost or self._chunk_refs.get(chunk_id, 0) <= 0:
            # Lost meanwhile, or deleted (refcount hit zero).  A deferred
            # free whose fill already settled is finished here.
            self._finish_deferred_release(chunk_id)
            return 0  # lost meanwhile, or deleted (refcount hit zero)
        replicas = self._chunk_replicas[chunk_id]
        live = [b for b in replicas if not b.crashed]
        if len(live) >= self.replication:
            return 0  # already repaired (e.g. duplicate enqueue)
        sources = [
            b for b in live if b.online and not b.filling(chunk_id)
        ]
        if not sources:
            self._stalled.append(chunk_id)
            return 0
        source = sources[0]
        taken = {b.name for b in replicas}
        candidates = sorted(
            (
                b
                for b in self.online_benefactors()
                if b.name not in taken and b.available >= self.chunk_size
            ),
            key=lambda b: (-b.available, b.name),
        )
        if not candidates:
            self._stalled.append(chunk_id)
            return 0
        target = candidates[0]
        target.reserve(self.chunk_size)
        target.begin_fill(chunk_id)
        replicas.append(target)
        self._benefactor_chunks.setdefault(target.name, set()).add(chunk_id)
        # Writers must start write-through to the fill target immediately,
        # or bytes written during the copy would miss the new replica.
        self._bump_files(chunk_id)
        try:
            if source.has_chunk(chunk_id):
                data = yield from source.fetch_chunk(target.name, chunk_id)
            else:
                data = None  # reserved-but-unwritten: nothing to copy
            yield from target.complete_fill(chunk_id, data)
        except BenefactorDownError:
            # Source or target died mid-copy.  Roll the target back unless
            # a concurrent forfeit already struck it from the books.
            indexed = self._benefactor_chunks.get(target.name)
            if indexed is not None and chunk_id in indexed:
                indexed.discard(chunk_id)
                if target in replicas:
                    replicas.remove(target)
                target.abort_fill(chunk_id)
                target.unreserve(self.chunk_size)
            if self._chunk_refs.get(chunk_id, 0) <= 0:
                # Deleted while the copy was in flight: nothing left to
                # repair; finish the deferred free now the fill settled.
                self._finish_deferred_release(chunk_id)
                return 0
            survivors = [b for b in replicas if not b.crashed]
            if survivors:
                self._degraded.append(chunk_id)
            elif chunk_id not in self._lost:
                self._lost.add(chunk_id)
                self._lost_replicas[chunk_id] = tuple(
                    sorted({b.name for b in replicas} | {source.name})
                )
                self.metrics.add("store.manager.chunks_lost")
                self._bump_files(chunk_id)
            return 0
        if self._chunk_refs.get(chunk_id, 0) <= 0:
            # Deleted during the copy: the fresh replica is moot — finish
            # the deferred free (which drops the just-filled copy too).
            self._finish_deferred_release(chunk_id)
            return 0
        self.metrics.add("store.manager.chunks_rereplicated")
        if data is not None:
            self.metrics.add("store.manager.rereplication_bytes", len(data))
        return 1

    def _finish_deferred_release(self, chunk_id: int) -> None:
        """Complete a deferred free once no fill is in flight for it."""
        if chunk_id not in self._deferred_release:
            return
        replicas = self._chunk_replicas.get(chunk_id, ())
        if any(b.filling(chunk_id) for b in replicas):
            return
        self._free_chunk(chunk_id, gc=self._deferred_release[chunk_id])

    def total_capacity(self) -> int:
        """Sum of all contributions in bytes."""
        return sum(b.contribution for b in self._benefactors.values())

    def total_available(self) -> int:
        """Unreserved bytes across online benefactors."""
        return sum(b.available for b in self.online_benefactors())

    # ------------------------------------------------------------------
    # RPC cost helper
    # ------------------------------------------------------------------
    def rpc(self, client: str) -> Generator[Event, object, None]:
        """Dispatch :meth:`_rpc_impl`, spanned when tracing is on."""
        gen = self._rpc_impl(client)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("store.manager", "rpc", gen, client=client)

    def _rpc_impl(self, client: str) -> Generator[Event, object, None]:
        """Process generator: one control round trip client <-> manager."""
        yield from self.node.network.transfer(client, self.name, CONTROL_MESSAGE_BYTES)
        yield from self.node.network.transfer(self.name, client, CONTROL_MESSAGE_BYTES)
        self.metrics.add("store.manager.rpcs")

    # ------------------------------------------------------------------
    # File lifecycle (metadata-only; callers charge rpc() separately so
    # batched operations don't double-pay)
    # ------------------------------------------------------------------
    def create_file(self, name: str, size: int, *, client: str) -> FileMeta:
        """Create a logical file: pick benefactors, reserve space.

        No data moves; chunks materialize on first write (the paper's
        ``posix_fallocate`` space reservation).
        """
        if name in self._files:
            raise FileExistsInStoreError(f"file {name!r} already exists")
        if size < 0:
            raise StoreError(f"negative file size {size}")
        num_chunks = chunk_count(size, self.chunk_size)
        placement = self.striping.place_replicas(
            self.online_benefactors(),
            num_chunks,
            self.chunk_size,
            client,
            self.replication,
        )
        meta = FileMeta(name=name, size=size)
        for replicas in placement:
            meta.chunk_ids.append(self._admit_chunk(name, replicas))
        self._files[name] = meta
        self.metrics.add("store.manager.files_created")
        return meta

    def _admit_chunk(self, name: str, replicas: list[Benefactor]) -> int:
        """Reserve space on every replica and register a fresh chunk."""
        chunk_id = next(self._chunk_ids)
        for benefactor in replicas:
            benefactor.reserve(self.chunk_size)
            self._benefactor_chunks.setdefault(benefactor.name, set()).add(
                chunk_id
            )
        self._chunk_replicas[chunk_id] = list(replicas)
        self._chunk_refs[chunk_id] = 1
        self._chunk_files[chunk_id] = {name}
        return chunk_id

    def extend_file(self, name: str, nbytes: int, *, client: str) -> int:
        """Append ``nbytes`` of freshly reserved space to a file.

        The new region starts on a chunk boundary (the previous size is
        padded); returns its byte offset.  Used by ``ssdcheckpoint`` to
        lay out checkpoint sections in a caller-chosen order.
        """
        meta = self.lookup(name)
        if nbytes < 0:
            raise StoreError(f"negative extension {nbytes}")
        offset = meta.num_chunks * self.chunk_size
        num_chunks = chunk_count(nbytes, self.chunk_size)
        placement = self.striping.place_replicas(
            self.online_benefactors(),
            num_chunks,
            self.chunk_size,
            client,
            self.replication,
        )
        for replicas in placement:
            meta.chunk_ids.append(self._admit_chunk(name, replicas))
        meta.size = offset + nbytes
        return offset

    def lookup(self, name: str) -> FileMeta:
        """Metadata of file ``name`` (raises FileNotFoundInStoreError)."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such file {name!r}") from None

    def exists(self, name: str) -> bool:
        """True when the store holds a file called ``name``."""
        return name in self._files

    def _chunk_id_at(self, name: str, index: int) -> int:
        meta = self.lookup(name)
        if not 0 <= index < meta.num_chunks:
            raise ChunkNotFoundError(
                f"{name!r} has {meta.num_chunks} chunks, no index {index}"
            )
        return meta.chunk_ids[index]

    def resolve_chunk(
        self, name: str, index: int, *, client: str | None = None
    ) -> tuple[int, Benefactor]:
        """The preferred *read* replica for chunk ``index`` of ``name``.

        Prefers a replica co-located with ``client``, else the first
        ready one in placement order (at replication=1 this is exactly
        the seed's single-owner resolution).  Replicas still being
        filled by re-replication are write-only and never returned.
        Raises :class:`ChunkUnavailableError` when the chunk is lost
        (retrying is pointless) and :class:`BenefactorDownError` when
        every replica is merely out of service (it may return).
        """
        chunk_id = self._chunk_id_at(name, index)
        if chunk_id in self._lost:
            raise ChunkUnavailableError(
                f"chunk {chunk_id} of {name!r} is lost: every replica is gone"
            )
        replicas = self._chunk_replicas[chunk_id]
        ready = [
            b for b in replicas if b.online and not b.filling(chunk_id)
        ]
        if not ready:
            raise BenefactorDownError(
                f"chunk {chunk_id} of {name!r} has no in-service replica "
                f"(of {[b.name for b in replicas]})"
            )
        if client is not None:
            for benefactor in ready:
                if benefactor.name == client:
                    return chunk_id, benefactor
        return chunk_id, ready[0]

    def resolve_replicas(
        self, name: str, index: int
    ) -> tuple[int, list[Benefactor]]:
        """All *write* replicas for chunk ``index`` of ``name``.

        Includes replicas still being filled by re-replication (writes
        must reach them or the fill snapshot would clobber fresh data).
        Same error contract as :meth:`resolve_chunk`.
        """
        chunk_id = self._chunk_id_at(name, index)
        if chunk_id in self._lost:
            raise ChunkUnavailableError(
                f"chunk {chunk_id} of {name!r} is lost: every replica is gone"
            )
        writable = [b for b in self._chunk_replicas[chunk_id] if b.online]
        if not writable:
            raise BenefactorDownError(
                f"chunk {chunk_id} of {name!r} has no in-service replica"
            )
        return chunk_id, writable

    def chunk_refcount(self, chunk_id: int) -> int:
        """How many files reference this chunk."""
        try:
            return self._chunk_refs[chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id}") from None

    def chunk_owner(self, chunk_id: int) -> Benefactor:
        """The primary (placement-preferred) benefactor of this chunk."""
        return self.chunk_replicas(chunk_id)[0]

    def chunk_replicas(self, chunk_id: int) -> list[Benefactor]:
        """All benefactors holding (or filling) a replica of this chunk."""
        try:
            replicas = self._chunk_replicas[chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id}") from None
        if not replicas:
            raise ChunkUnavailableError(
                f"chunk {chunk_id} is lost: every replica is gone"
            )
        return list(replicas)

    def delete_file(self, name: str, *, gc: bool = False) -> int:
        """Drop a file; chunks are freed when their refcount reaches zero.

        Returns the physical bytes freed across replicas.  ``gc`` marks
        the frees as garbage-collection work (counted in the
        ``store.manager.gc_reclaimed_bytes`` metric, including frees
        deferred behind an in-flight fill).
        """
        meta = self.lookup(name)
        freed = 0
        for chunk_id in meta.chunk_ids:
            files = self._chunk_files.get(chunk_id)
            if files is not None:
                files.discard(name)
            freed += self._release_chunk(chunk_id, gc=gc)
        del self._files[name]
        self.metrics.add("store.manager.files_deleted")
        return freed

    def _release_chunk(self, chunk_id: int, *, gc: bool = False) -> int:
        self._chunk_refs[chunk_id] -= 1
        if self._chunk_refs[chunk_id] > 0:
            return 0
        replicas = self._chunk_replicas.get(chunk_id, ())
        if any(b.filling(chunk_id) for b in replicas):
            # A re-replication copy is streaming into this chunk: freeing
            # the data under the fill would strand ``complete_fill``.
            # Defer the physical free; the repair path finishes it once
            # the fill settles (GC never races repair).
            self._deferred_release[chunk_id] = (
                gc or self._deferred_release.get(chunk_id, False)
            )
            return 0
        return self._free_chunk(chunk_id, gc=gc)

    def _free_chunk(self, chunk_id: int, *, gc: bool = False) -> int:
        """Physically free every replica of an unreferenced chunk."""
        replicas = self._chunk_replicas.pop(chunk_id, [])
        self._chunk_refs.pop(chunk_id, None)
        self._chunk_files.pop(chunk_id, None)
        self._lost.discard(chunk_id)
        self._lost_replicas.pop(chunk_id, None)
        self._deferred_release.pop(chunk_id, None)
        freed = 0
        for owner in replicas:
            owner.delete_chunk(chunk_id)
            owner.unreserve(self.chunk_size)
            indexed = self._benefactor_chunks.get(owner.name)
            if indexed is not None:
                indexed.discard(chunk_id)
            freed += self.chunk_size
        if gc and freed:
            self.metrics.add("store.manager.gc_reclaimed_bytes", freed)
        return freed

    # ------------------------------------------------------------------
    # Checkpoint linking and copy-on-write (paper §III-E)
    # ------------------------------------------------------------------
    def link_chunks(self, dst_name: str, src_name: str) -> None:
        """Append ``src``'s chunks to ``dst`` by reference (no data copied).

        Used by ``ssdcheckpoint``: the checkpoint file reuses the
        NVM-resident chunks of the memory-mapped variable.
        """
        dst = self.lookup(dst_name)
        src = self.lookup(src_name)
        # Linked chunks start on a chunk boundary: pad the destination's
        # logical size so section offsets stay chunk-aligned.
        dst.size = dst.num_chunks * self.chunk_size
        for chunk_id in src.chunk_ids:
            self._chunk_refs[chunk_id] += 1
            self._chunk_files.setdefault(chunk_id, set()).add(dst_name)
            dst.chunk_ids.append(chunk_id)
        dst.size += src.size
        self.metrics.add("store.manager.chunks_linked", src.num_chunks)

    def link_chunk(self, dst_name: str, chunk_id: int, nbytes: int) -> int:
        """Append one existing chunk to ``dst`` by reference.

        The single-chunk sibling of :meth:`link_chunks`, used by
        incremental/async checkpoints to interleave linked (clean) and
        freshly reserved (dirty) chunks within one section.  Returns the
        chunk-aligned byte offset the link landed at; ``nbytes`` is the
        logical payload length within the chunk.
        """
        dst = self.lookup(dst_name)
        if chunk_id not in self._chunk_refs:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id}")
        if not 0 <= nbytes <= self.chunk_size:
            raise StoreError(
                f"link payload {nbytes} outside [0, {self.chunk_size}]"
            )
        offset = dst.num_chunks * self.chunk_size
        self._chunk_refs[chunk_id] += 1
        self._chunk_files.setdefault(chunk_id, set()).add(dst_name)
        dst.chunk_ids.append(chunk_id)
        dst.size = offset + nbytes
        self.metrics.add("store.manager.chunks_linked")
        return offset

    def chunk_known(self, chunk_id: int) -> bool:
        """True while ``chunk_id`` is live (referenced by some file).

        Metadata-only; async checkpoints use it to validate that a prior
        epoch's frozen chunks still exist before linking against them.
        """
        return chunk_id in self._chunk_refs

    def is_shared(self, name: str, index: int) -> bool:
        """True when chunk ``index`` of ``name`` is shared with another file."""
        meta = self.lookup(name)
        return self._chunk_refs[meta.chunk_ids[index]] > 1

    def cow_chunk(self, name: str, index: int) -> tuple[int, int, Benefactor]:
        """Prepare a copy-on-write replacement for a shared chunk.

        Allocates a fresh chunk id on the same benefactor(s), rebinds the
        file's map to it, and drops one reference from the original.
        Returns ``(old_chunk_id, new_chunk_id, primary_benefactor)``; the
        caller is responsible for copying payload on *every* replica
        (:meth:`chunk_replicas` lists them; at replication=1 the primary
        is the only one) before writing, and for charging the RPC.
        """
        meta = self.lookup(name)
        old_id = meta.chunk_ids[index]
        if self._chunk_refs[old_id] <= 1:
            raise StoreError(
                f"chunk {old_id} of {name!r} is not shared; COW is unnecessary"
            )
        # The copy lands on the live replicas of the original — a crashed
        # (not-yet-forfeited) replica has no data to copy from, so the
        # new chunk starts at the surviving degree and is queued for
        # repair if that is short of the target.
        replicas = [b for b in self._chunk_replicas[old_id] if not b.crashed]
        if not replicas:
            raise ChunkUnavailableError(
                f"chunk {old_id} of {name!r} is lost: cannot copy-on-write"
            )
        new_id = next(self._chunk_ids)
        for owner in replicas:
            owner.reserve(self.chunk_size)
            self._benefactor_chunks.setdefault(owner.name, set()).add(new_id)
        self._chunk_replicas[new_id] = list(replicas)
        self._chunk_refs[new_id] = 1
        self._chunk_files[new_id] = {name}
        files = self._chunk_files.get(old_id)
        if files is not None:
            files.discard(name)
        meta.chunk_ids[index] = new_id
        self._chunk_refs[old_id] -= 1
        meta.generation += 1
        self.metrics.add("store.manager.cow_chunks")
        if len(replicas) < self.replication:
            self.metrics.add("store.manager.chunks_degraded")
            self._degraded.append(new_id)
            self._wake_rereplicator()
        return old_id, new_id, replicas[0]

    # ------------------------------------------------------------------
    # Checkpoint epoch chains (paper §III-E; crash-restart recovery)
    # ------------------------------------------------------------------
    # All chain operations are pure metadata: callers piggyback them on
    # control RPCs they already charge, so registering epochs adds no
    # simulated events (the default checkpoint path stays event-identical
    # to the pre-epoch behaviour).

    def begin_epoch(
        self, tag: str, epoch: int, path: str, *, mode: str = "incremental"
    ) -> EpochRecord:
        """Open an epoch: record it as in-flight (uncommitted).

        ``parent`` is fixed to the newest epoch committed *now* — the
        fallback target should a crash truncate this epoch.  A failed
        earlier attempt at the same epoch may be re-begun; a committed
        epoch may not.
        """
        chain = self._epochs.setdefault(tag, {})
        existing = chain.get(epoch)
        if existing is not None and existing.committed:
            raise FileExistsInStoreError(
                f"epoch {epoch} of checkpoint {tag!r} already committed"
            )
        record = EpochRecord(
            tag=tag,
            epoch=epoch,
            path=path,
            mode=mode,
            parent=self.latest_committed_epoch(tag),
        )
        chain[epoch] = record
        return record

    def commit_epoch(
        self,
        tag: str,
        epoch: int,
        *,
        sections: tuple[tuple[str, int, int, bool], ...],
    ) -> EpochRecord:
        """Seal an epoch: store its section layout and mark it complete.

        Only committed epochs are restore targets; an epoch that never
        commits (app or benefactor crash mid-checkpoint) is *truncated*
        and restores fall back along its parent link.
        """
        record = self.epoch_record(tag, epoch)
        record.sections = tuple(sections)
        record.committed = True
        self.metrics.add("checkpoint.epochs_committed")
        return record

    def epoch_record(self, tag: str, epoch: int) -> EpochRecord:
        """The :class:`EpochRecord` for ``tag``/``epoch`` (raises
        :class:`FileNotFoundInStoreError` when unknown)."""
        try:
            return self._epochs[tag][epoch]
        except KeyError:
            raise FileNotFoundInStoreError(
                f"no epoch {epoch} of checkpoint {tag!r}"
            ) from None

    def has_epochs(self, tag: str) -> bool:
        """True when any epoch (committed or not) is known for ``tag``."""
        return bool(self._epochs.get(tag))

    def committed_epochs(self, tag: str) -> tuple[int, ...]:
        """Sorted committed epoch ids of ``tag`` (the live chain)."""
        chain = self._epochs.get(tag, {})
        return tuple(sorted(e for e, r in chain.items() if r.committed))

    def latest_committed_epoch(self, tag: str) -> int | None:
        """Newest committed epoch of ``tag``, or ``None``."""
        committed = self.committed_epochs(tag)
        return committed[-1] if committed else None

    def chain_length(self, tag: str) -> int:
        """Number of committed epochs currently live for ``tag``."""
        return len(self.committed_epochs(tag))

    def resolve_restore_epoch(self, tag: str, epoch: int | None = None) -> int | None:
        """The epoch a restore of ``tag``/``epoch`` should read.

        ``None`` requests the newest committed epoch.  A known but
        uncommitted (crash-truncated) epoch falls back along parent
        links to the newest complete ancestor.  Returns ``None`` when no
        complete epoch exists; raises
        :class:`FileNotFoundInStoreError` for an unknown tag or epoch.
        """
        chain = self._epochs.get(tag)
        if not chain:
            raise FileNotFoundInStoreError(f"no checkpoint {tag!r}")
        if epoch is None:
            return self.latest_committed_epoch(tag)
        cursor = chain.get(epoch)
        if cursor is None:
            raise FileNotFoundInStoreError(
                f"no epoch {epoch} of checkpoint {tag!r}"
            )
        while cursor is not None and not cursor.committed:
            cursor = (
                chain.get(cursor.parent) if cursor.parent is not None else None
            )
        return cursor.epoch if cursor is not None else None

    def pin_epoch(self, tag: str, epoch: int) -> None:
        """Hold an epoch against GC for the duration of a restore."""
        self.epoch_record(tag, epoch).pins += 1

    def unpin_epoch(self, tag: str, epoch: int) -> None:
        """Release a restore's hold on an epoch."""
        record = self.epoch_record(tag, epoch)
        record.pins = max(0, record.pins - 1)

    def epoch_pinned(self, tag: str, epoch: int) -> bool:
        """True while at least one restore holds this epoch."""
        record = self._epochs.get(tag, {}).get(epoch)
        return record is not None and record.pins > 0

    def gc_candidates(self, tag: str, *, keep_last: int = 1) -> tuple[int, ...]:
        """Committed epochs of ``tag`` eligible for garbage collection.

        Keeps the newest ``keep_last`` committed epochs, every pinned
        epoch (a restore is reading it), and the fallback ancestor of
        any in-flight uncommitted epoch (so a crash mid-checkpoint can
        still restart bit-identically from its parent).
        """
        committed = self.committed_epochs(tag)
        if keep_last > 0:
            committed = committed[: max(0, len(committed) - keep_last)]
        chain = self._epochs.get(tag, {})
        shielded: set[int] = set()
        for record in chain.values():
            if record.committed:
                continue
            cursor = (
                chain.get(record.parent) if record.parent is not None else None
            )
            while cursor is not None and not cursor.committed:
                cursor = (
                    chain.get(cursor.parent)
                    if cursor.parent is not None
                    else None
                )
            if cursor is not None:
                shielded.add(cursor.epoch)
        return tuple(
            epoch
            for epoch in committed
            if epoch not in shielded and chain[epoch].pins == 0
        )

    def retire_epoch(self, tag: str, epoch: int) -> int:
        """Garbage-collect one superseded epoch; returns bytes reclaimed.

        Deletes the epoch's checkpoint file with GC-attributed frees
        (chunks still referenced by newer epochs or the live variable
        merely drop a refcount) and splices child parent links past the
        retired epoch.  Refuses pinned or uncommitted epochs.
        """
        record = self.epoch_record(tag, epoch)
        if not record.committed:
            raise StoreError(
                f"epoch {epoch} of checkpoint {tag!r} is not committed"
            )
        if record.pins:
            raise StoreError(
                f"epoch {epoch} of checkpoint {tag!r} is pinned by an "
                f"in-flight restore"
            )
        freed = self.delete_file(record.path, gc=True)
        chain = self._epochs[tag]
        del chain[epoch]
        for other in chain.values():
            if other.parent == epoch:
                other.parent = record.parent
        if not chain:
            del self._epochs[tag]
        self.metrics.add("store.manager.epochs_retired")
        return freed

    def drop_epoch(self, tag: str, epoch: int) -> None:
        """Forget epoch metadata without touching its file.

        Used by explicit checkpoint deletion, where the caller unlinks
        the file itself through the file system layer.
        """
        chain = self._epochs.get(tag)
        if not chain:
            return
        record = chain.pop(epoch, None)
        if record is None:
            return
        for other in chain.values():
            if other.parent == epoch:
                other.parent = record.parent
        if not chain:
            del self._epochs[tag]

    def __repr__(self) -> str:
        return (
            f"<Manager on {self.name} files={len(self._files)} "
            f"benefactors={len(self._benefactors)}>"
        )
