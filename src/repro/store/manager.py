"""Manager: the metadata brain of the aggregate NVM store.

Tracks benefactors and logical files, performs space allocation and chunk
striping at file-creation time (a pure reservation — ``posix_fallocate``
semantics, no data transfer), resolves chunk locations for clients, and
reference-counts chunks so that checkpoint files can *link* the chunks of
memory-mapped variables instead of copying them (paper §III-E).  When a
linked chunk is subsequently modified, the write path asks the manager for
a copy-on-write replacement, preserving the checkpoint's frozen view.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.cluster.node import Node
from repro.errors import (
    BenefactorDownError,
    ChunkNotFoundError,
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    StoreError,
)
from repro.sim.events import Event
from repro.store.benefactor import Benefactor
from repro.store.chunk import CHUNK_SIZE, CONTROL_MESSAGE_BYTES, chunk_count
from repro.store.striping import RoundRobinStriping, StripingPolicy
from repro.util.recorder import MetricsRecorder


@dataclass
class FileMeta:
    """Metadata for one logical file in the aggregate store."""

    name: str
    size: int
    chunk_ids: list[int] = field(default_factory=list)
    # Bumped whenever the chunk map changes (COW); clients use it to
    # invalidate their cached maps, modelling lease/callback invalidation.
    generation: int = 0

    @property
    def num_chunks(self) -> int:
        """Number of chunks backing the file."""
        return len(self.chunk_ids)


class Manager:
    """Aggregate-store coordinator, hosted on one cluster node.

    Control traffic (create/resolve/link/delete) crosses the network as
    small RPC messages; chunk payloads never pass through the manager —
    clients connect to benefactors directly, as in the paper.
    """

    def __init__(
        self,
        node: Node,
        *,
        chunk_size: int = CHUNK_SIZE,
        striping: StripingPolicy | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.chunk_size = chunk_size
        self.striping = striping if striping is not None else RoundRobinStriping()
        self.metrics = metrics if metrics is not None else node.metrics
        self._benefactors: dict[str, Benefactor] = {}
        self._files: dict[str, FileMeta] = {}
        self._chunk_ids = itertools.count(1)
        self._chunk_owner: dict[int, Benefactor] = {}
        self._chunk_refs: dict[int, int] = {}

    @property
    def name(self) -> str:
        """The node hosting the manager."""
        return self.node.name

    # ------------------------------------------------------------------
    # Benefactor registry and monitoring
    # ------------------------------------------------------------------
    def register_benefactor(self, benefactor: Benefactor) -> None:
        """Add a benefactor to the aggregate store."""
        if benefactor.name in self._benefactors:
            raise StoreError(f"benefactor {benefactor.name} already registered")
        self._benefactors[benefactor.name] = benefactor

    def benefactors(self) -> list[Benefactor]:
        """All registered benefactors."""
        return list(self._benefactors.values())

    def online_benefactors(self) -> list[Benefactor]:
        """Benefactors currently in service."""
        return [b for b in self._benefactors.values() if b.online]

    def mark_offline(self, name: str) -> None:
        """Benefactor status monitoring: take a benefactor out of service."""
        self._benefactor(name).online = False

    def mark_online(self, name: str) -> None:
        """Return a benefactor to service."""
        self._benefactor(name).online = True

    def _benefactor(self, name: str) -> Benefactor:
        try:
            return self._benefactors[name]
        except KeyError:
            raise StoreError(f"unknown benefactor {name!r}") from None

    def monitor(
        self, interval: float, *, rounds: int | None = None
    ) -> Generator[Event, object, int]:
        """Benefactor status monitoring (paper §II): a heartbeat process.

        Every ``interval`` virtual seconds, pings each in-service
        benefactor with a control message; crashed benefactors are taken
        out of service so chunk resolution fails fast and new allocations
        avoid them.  Runs ``rounds`` times (forever when ``None``; spawn
        via ``engine.process`` and stop with ``Process.interrupt``).
        Returns the number of benefactors it marked offline.
        """
        marked = 0
        count = 0
        while rounds is None or count < rounds:
            yield self.node.engine.timeout(interval)
            count += 1
            for benefactor in list(self._benefactors.values()):
                if not benefactor.online:
                    continue
                yield from self.node.network.transfer(
                    self.name, benefactor.name, CONTROL_MESSAGE_BYTES
                )
                if benefactor.crashed:
                    self.mark_offline(benefactor.name)
                    marked += 1
                    self.metrics.add("store.manager.benefactors_failed")
                else:
                    yield from self.node.network.transfer(
                        benefactor.name, self.name, CONTROL_MESSAGE_BYTES
                    )
        return marked

    def total_capacity(self) -> int:
        """Sum of all contributions in bytes."""
        return sum(b.contribution for b in self._benefactors.values())

    def total_available(self) -> int:
        """Unreserved bytes across online benefactors."""
        return sum(b.available for b in self.online_benefactors())

    # ------------------------------------------------------------------
    # RPC cost helper
    # ------------------------------------------------------------------
    def rpc(self, client: str) -> Generator[Event, object, None]:
        """Process generator: one control round trip client <-> manager."""
        yield from self.node.network.transfer(client, self.name, CONTROL_MESSAGE_BYTES)
        yield from self.node.network.transfer(self.name, client, CONTROL_MESSAGE_BYTES)
        self.metrics.add("store.manager.rpcs")

    # ------------------------------------------------------------------
    # File lifecycle (metadata-only; callers charge rpc() separately so
    # batched operations don't double-pay)
    # ------------------------------------------------------------------
    def create_file(self, name: str, size: int, *, client: str) -> FileMeta:
        """Create a logical file: pick benefactors, reserve space.

        No data moves; chunks materialize on first write (the paper's
        ``posix_fallocate`` space reservation).
        """
        if name in self._files:
            raise FileExistsInStoreError(f"file {name!r} already exists")
        if size < 0:
            raise StoreError(f"negative file size {size}")
        num_chunks = chunk_count(size, self.chunk_size)
        placement = self.striping.place(
            self.online_benefactors(), num_chunks, self.chunk_size, client
        )
        meta = FileMeta(name=name, size=size)
        for benefactor in placement:
            benefactor.reserve(self.chunk_size)
            chunk_id = next(self._chunk_ids)
            self._chunk_owner[chunk_id] = benefactor
            self._chunk_refs[chunk_id] = 1
            meta.chunk_ids.append(chunk_id)
        self._files[name] = meta
        self.metrics.add("store.manager.files_created")
        return meta

    def extend_file(self, name: str, nbytes: int, *, client: str) -> int:
        """Append ``nbytes`` of freshly reserved space to a file.

        The new region starts on a chunk boundary (the previous size is
        padded); returns its byte offset.  Used by ``ssdcheckpoint`` to
        lay out checkpoint sections in a caller-chosen order.
        """
        meta = self.lookup(name)
        if nbytes < 0:
            raise StoreError(f"negative extension {nbytes}")
        offset = meta.num_chunks * self.chunk_size
        num_chunks = chunk_count(nbytes, self.chunk_size)
        placement = self.striping.place(
            self.online_benefactors(), num_chunks, self.chunk_size, client
        )
        for benefactor in placement:
            benefactor.reserve(self.chunk_size)
            chunk_id = next(self._chunk_ids)
            self._chunk_owner[chunk_id] = benefactor
            self._chunk_refs[chunk_id] = 1
            meta.chunk_ids.append(chunk_id)
        meta.size = offset + nbytes
        return offset

    def lookup(self, name: str) -> FileMeta:
        """Metadata of file ``name`` (raises FileNotFoundInStoreError)."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such file {name!r}") from None

    def exists(self, name: str) -> bool:
        """True when the store holds a file called ``name``."""
        return name in self._files

    def resolve_chunk(self, name: str, index: int) -> tuple[int, Benefactor]:
        """Which benefactor stores chunk ``index`` of file ``name``."""
        meta = self.lookup(name)
        if not 0 <= index < meta.num_chunks:
            raise ChunkNotFoundError(
                f"{name!r} has {meta.num_chunks} chunks, no index {index}"
            )
        chunk_id = meta.chunk_ids[index]
        owner = self._chunk_owner[chunk_id]
        if not owner.online:
            raise BenefactorDownError(
                f"chunk {chunk_id} of {name!r} lives on offline benefactor "
                f"{owner.name}"
            )
        return chunk_id, owner

    def chunk_refcount(self, chunk_id: int) -> int:
        """How many files reference this chunk."""
        try:
            return self._chunk_refs[chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id}") from None

    def chunk_owner(self, chunk_id: int) -> Benefactor:
        """The benefactor storing this chunk."""
        try:
            return self._chunk_owner[chunk_id]
        except KeyError:
            raise ChunkNotFoundError(f"unknown chunk {chunk_id}") from None

    def delete_file(self, name: str) -> None:
        """Drop a file; chunks are freed when their refcount reaches zero."""
        meta = self.lookup(name)
        for chunk_id in meta.chunk_ids:
            self._release_chunk(chunk_id)
        del self._files[name]
        self.metrics.add("store.manager.files_deleted")

    def _release_chunk(self, chunk_id: int) -> None:
        self._chunk_refs[chunk_id] -= 1
        if self._chunk_refs[chunk_id] == 0:
            owner = self._chunk_owner.pop(chunk_id)
            del self._chunk_refs[chunk_id]
            owner.delete_chunk(chunk_id)
            owner.unreserve(self.chunk_size)

    # ------------------------------------------------------------------
    # Checkpoint linking and copy-on-write (paper §III-E)
    # ------------------------------------------------------------------
    def link_chunks(self, dst_name: str, src_name: str) -> None:
        """Append ``src``'s chunks to ``dst`` by reference (no data copied).

        Used by ``ssdcheckpoint``: the checkpoint file reuses the
        NVM-resident chunks of the memory-mapped variable.
        """
        dst = self.lookup(dst_name)
        src = self.lookup(src_name)
        # Linked chunks start on a chunk boundary: pad the destination's
        # logical size so section offsets stay chunk-aligned.
        dst.size = dst.num_chunks * self.chunk_size
        for chunk_id in src.chunk_ids:
            self._chunk_refs[chunk_id] += 1
            dst.chunk_ids.append(chunk_id)
        dst.size += src.size
        self.metrics.add("store.manager.chunks_linked", src.num_chunks)

    def is_shared(self, name: str, index: int) -> bool:
        """True when chunk ``index`` of ``name`` is shared with another file."""
        meta = self.lookup(name)
        return self._chunk_refs[meta.chunk_ids[index]] > 1

    def cow_chunk(self, name: str, index: int) -> tuple[int, int, Benefactor]:
        """Prepare a copy-on-write replacement for a shared chunk.

        Allocates a fresh chunk id on the same benefactor, rebinds the
        file's map to it, and drops one reference from the original.
        Returns ``(old_chunk_id, new_chunk_id, benefactor)``; the caller is
        responsible for copying payload (e.g. via
        :meth:`Benefactor.copy_chunk_local`) before writing, and for
        charging the RPC.
        """
        meta = self.lookup(name)
        old_id = meta.chunk_ids[index]
        if self._chunk_refs[old_id] <= 1:
            raise StoreError(
                f"chunk {old_id} of {name!r} is not shared; COW is unnecessary"
            )
        owner = self._chunk_owner[old_id]
        owner.reserve(self.chunk_size)
        new_id = next(self._chunk_ids)
        self._chunk_owner[new_id] = owner
        self._chunk_refs[new_id] = 1
        meta.chunk_ids[index] = new_id
        self._chunk_refs[old_id] -= 1
        meta.generation += 1
        self.metrics.add("store.manager.cow_chunks")
        return old_id, new_id, owner

    def __repr__(self) -> str:
        return (
            f"<Manager on {self.name} files={len(self._files)} "
            f"benefactors={len(self._benefactors)}>"
        )
