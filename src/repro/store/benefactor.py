"""Benefactor: contributes a node-local SSD partition to the aggregate store.

A benefactor owns a slice of its node's SSD, stores chunks as individual
extents (the paper stores them as individual files), and serves direct
client connections for chunk data.  All payload bytes are real — reads
return exactly what was written — while device and network time is charged
through the simulation substrate.
"""

from __future__ import annotations

import sys
from collections.abc import Generator

from repro.cluster.node import Node
from repro.errors import BenefactorDownError, CapacityError, StoreError
from repro.sim.events import Event
from repro.store.chunk import CHUNK_SIZE
from repro.util.intervals import IntervalSet
from repro.util.recorder import MetricsRecorder


class Benefactor:
    """The per-node storage service of the aggregate NVM store."""

    def __init__(
        self,
        node: Node,
        *,
        contribution: int | None = None,
        chunk_size: int = CHUNK_SIZE,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if node.ssd is None:
            raise StoreError(f"{node.name} has no SSD to contribute")
        self.node = node
        self.ssd = node.ssd
        self.chunk_size = chunk_size
        self.metrics = metrics if metrics is not None else node.metrics
        max_contribution = self.ssd.logical_capacity
        self.contribution = (
            contribution if contribution is not None else max_contribution
        )
        if not 0 < self.contribution <= max_contribution:
            raise CapacityError(
                f"{node.name}: contribution {self.contribution} exceeds SSD "
                f"logical capacity {max_contribution}"
            )
        self._reserved = 0  # bytes promised to the manager
        # Chunk payloads (real bytes) and their SSD extents.
        self._data: dict[int, bytearray] = {}
        self._extents: dict[int, int] = {}  # chunk_id -> ssd byte offset
        self._free_extents: list[int] = list(
            range(0, self.contribution - chunk_size + 1, chunk_size)
        )
        self._free_extents.reverse()  # pop() from low offsets first
        # Hot-path counters, resolved on first use so untouched metrics
        # never materialize (snapshots stay identical to on-demand adds).
        self._in_counter = None
        self._out_counter = None
        self.online = True  # the manager's view (set via mark_offline)
        self.crashed = False  # ground truth: the node is actually dead
        # Transient slowdown (fault injection): extra seconds charged per
        # data-path operation while the virtual clock is before the mark.
        self._slow_until = 0.0
        self._slow_extra = 0.0
        # Chunks mid-fill by re-replication: write-throughs that land while
        # the copy is in flight record their intervals so the completed
        # fill only patches the gaps (same merge rule as the chunk cache).
        self._fill_shadow: dict[int, IntervalSet] = {}

    @property
    def name(self) -> str:
        """The benefactor's (node) name."""
        return self.node.name

    @property
    def reserved(self) -> int:
        """Bytes of contribution currently promised to files."""
        return self._reserved

    @property
    def available(self) -> int:
        """Contribution bytes not yet reserved."""
        return self.contribution - self._reserved

    @property
    def stored_chunks(self) -> int:
        """Number of chunks with materialized data."""
        return len(self._data)

    # ------------------------------------------------------------------
    # Space accounting (driven by the manager)
    # ------------------------------------------------------------------
    def reserve(self, nbytes: int) -> None:
        """Promise ``nbytes`` of contribution to the manager."""
        if nbytes < 0:
            raise ValueError(f"negative reservation {nbytes}")
        if self._reserved + nbytes > self.contribution:
            raise CapacityError(
                f"{self.name}: reservation of {nbytes} exceeds available "
                f"{self.available}"
            )
        self._reserved += nbytes

    def unreserve(self, nbytes: int) -> None:
        """Return a prior promise."""
        if nbytes < 0 or nbytes > self._reserved:
            raise ValueError(
                f"{self.name}: bad unreserve {nbytes} (reserved {self._reserved})"
            )
        self._reserved -= nbytes

    # ------------------------------------------------------------------
    # Chunk data service (driven by clients; all are process generators)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate the benefactor's node dying (fault-injection hook).

        Data-path requests fail immediately; the manager's heartbeat
        monitor (see :meth:`repro.store.manager.Manager.monitor`) will
        notice and take the benefactor out of service.
        """
        self.crashed = True

    def slow_down(self, until: float, extra_seconds: float) -> None:
        """Inject a transient slowdown (fault-injection hook).

        Until virtual time ``until``, every data-path operation yields an
        extra ``extra_seconds`` timeout — modelling a contended or
        degraded node that is slow but not dead.
        """
        self._slow_until = until
        self._slow_extra = extra_seconds

    def _slowdown(self) -> Generator[Event, object, None]:
        if self._slow_until > self.node.engine.now:
            yield self.node.engine.timeout(self._slow_extra)

    def _check_online(self) -> None:
        if self.crashed or not self.online:
            raise BenefactorDownError(f"benefactor {self.name} is offline")

    def _extent_of(self, chunk_id: int) -> int:
        try:
            return self._extents[chunk_id]
        except KeyError:
            raise StoreError(
                f"{self.name}: chunk {chunk_id} has no extent"
            ) from None

    def _materialize(self, chunk_id: int) -> bytearray:
        """Ensure the chunk has an extent and a (zero-filled) payload."""
        if chunk_id not in self._data:
            if not self._free_extents:
                raise CapacityError(f"{self.name}: no free extents")
            self._extents[chunk_id] = self._free_extents.pop()
            self._data[chunk_id] = bytearray(self.chunk_size)
        return self._data[chunk_id]

    def _exclusive(self, chunk_id: int) -> bytearray:
        """The chunk payload, made safe to mutate in place.

        Full-chunk fetches loan the live payload buffer to the caller
        (see :meth:`_fetch_chunk_impl`), so before mutating we check
        whether any loan is still outstanding and copy-on-write if so —
        the borrower keeps its fetch-time snapshot, we keep a private
        buffer.  Sharing is detected by refcount: exactly three
        references exist when nobody borrowed the buffer (``_data`` dict,
        this frame's local, ``getrefcount``'s argument).  Callers must
        not hold their own reference to the payload across this call —
        it would read as a loan and force a spurious copy.
        """
        payload = self._data[chunk_id]
        if sys.getrefcount(payload) > 3:
            payload = bytearray(payload)
            self._data[chunk_id] = payload
        return payload

    def has_chunk(self, chunk_id: int) -> bool:
        """True when the chunk's payload is materialized here."""
        return chunk_id in self._data

    def store_chunk(
        self, client: str, chunk_id: int, data: bytes, offset: int = 0
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_store_chunk_impl`, spanned when tracing is on."""
        gen = self._store_chunk_impl(client, chunk_id, data, offset)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "benefactor", "store_chunk", gen,
            benefactor=self.name, chunk=chunk_id, bytes=len(data),
        )

    def _store_chunk_impl(
        self, client: str, chunk_id: int, data: bytes, offset: int = 0
    ) -> Generator[Event, object, None]:
        """Receive ``data`` from ``client`` and write it at ``offset``
        within the chunk.

        Charges one network transfer (client -> benefactor) of the payload
        plus the SSD write.  Partial writes are how NVMalloc's dirty-page
        optimization reaches the device: only modified pages travel.
        """
        self._check_online()
        if offset < 0 or offset + len(data) > self.chunk_size:
            raise StoreError(
                f"{self.name}: write [{offset}, {offset + len(data)}) outside "
                f"chunk of {self.chunk_size}"
            )
        if self._slow_until > self.node.engine.now:  # inlined _slowdown
            yield self.node.engine.timeout(self._slow_extra)
        yield from self.node.network.transfer(client, self.name, len(data))
        if self.crashed or not self.online:
            # Crash-during-writeback: the payload travelled but was never
            # applied or acknowledged.  The client must treat the write as
            # lost and retry against a surviving replica.
            raise BenefactorDownError(
                f"benefactor {self.name} died mid-writeback of chunk {chunk_id}"
            )
        shadow = self._fill_shadow.get(chunk_id)
        if shadow is not None:
            shadow.add(offset, offset + len(data))
        if chunk_id in self._data:
            payload = self._exclusive(chunk_id)
            payload[offset : offset + len(data)] = data
        elif len(data) == self.chunk_size:
            # First write covering the whole chunk: adopt one copy of the
            # payload instead of zero-filling a buffer and overwriting it.
            if not self._free_extents:
                raise CapacityError(f"{self.name}: no free extents")
            self._extents[chunk_id] = self._free_extents.pop()
            self._data[chunk_id] = bytearray(data)
        else:
            payload = self._materialize(chunk_id)
            payload[offset : offset + len(data)] = data
        yield from self.ssd.write_extent(self._extent_of(chunk_id) + offset, len(data))
        counter = self._in_counter
        if counter is None:
            counter = self._in_counter = self.metrics.counter(
                "store.benefactor.bytes_in"
            )
        counter.total += len(data)
        counter.count += 1

    def fetch_chunk(
        self, client: str, chunk_id: int, offset: int = 0, length: int | None = None
    ) -> Generator[Event, object, bytearray]:
        """Dispatch :meth:`_fetch_chunk_impl`, spanned when tracing is on."""
        gen = self._fetch_chunk_impl(client, chunk_id, offset, length)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "benefactor", "fetch_chunk", gen,
            benefactor=self.name, chunk=chunk_id,
        )

    def _fetch_chunk_impl(
        self, client: str, chunk_id: int, offset: int = 0, length: int | None = None
    ) -> Generator[Event, object, bytearray]:
        """Read chunk bytes and ship them to ``client``.

        Unmaterialized chunks read as zeroes (space reservation creates no
        data, matching ``posix_fallocate`` semantics).  The returned
        buffer behaves as a fetch-time snapshot: partial reads get a
        fresh copy, full-chunk reads get a zero-copy loan of the live
        payload that copy-on-write protects on both sides (see
        :meth:`_exclusive`).
        """
        self._check_online()
        if length is None:
            length = self.chunk_size - offset
        if offset < 0 or offset + length > self.chunk_size:
            raise StoreError(
                f"{self.name}: read [{offset}, {offset + length}) outside "
                f"chunk of {self.chunk_size}"
            )
        if self._slow_until > self.node.engine.now:  # inlined _slowdown
            yield self.node.engine.timeout(self._slow_extra)
        stored = self._data.get(chunk_id)
        if stored is not None:
            yield from self.ssd.read_extent(self._extent_of(chunk_id) + offset, length)
            if offset == 0 and length == len(stored):
                # Loan the live payload buffer instead of copying a
                # quarter-megabyte per fetch.  Snapshot semantics are
                # preserved copy-on-write: every mutation on this side
                # goes through _exclusive (which copies while a loan is
                # outstanding), and the chunk cache unshares its entry
                # before the first write on its side.
                data = stored
            else:
                data = bytearray(memoryview(stored)[offset : offset + length])
        else:
            data = bytearray(length)  # reserved-but-unwritten: zeroes, no device read
        yield from self.node.network.transfer(self.name, client, len(data))
        if self.crashed or not self.online:
            # Crash mid-transfer: bytes on the wire never arrived whole.
            raise BenefactorDownError(
                f"benefactor {self.name} died mid-fetch of chunk {chunk_id}"
            )
        counter = self._out_counter
        if counter is None:
            counter = self._out_counter = self.metrics.counter(
                "store.benefactor.bytes_out"
            )
        counter.total += len(data)
        counter.count += 1
        return data

    def copy_chunk_local(
        self, src_chunk_id: int, dst_chunk_id: int
    ) -> Generator[Event, object, None]:
        """Duplicate a chunk on this benefactor (COW support, no network)."""
        self._check_online()
        if src_chunk_id in self._data:
            yield from self.ssd.read_extent(
                self._extent_of(src_chunk_id), self.chunk_size
            )
            if dst_chunk_id not in self._data:
                if not self._free_extents:
                    raise CapacityError(f"{self.name}: no free extents")
                self._extents[dst_chunk_id] = self._free_extents.pop()
            # Install a fresh copy wholesale: an outstanding loan of the
            # old destination payload keeps its snapshot untouched.
            self._data[dst_chunk_id] = bytearray(self._data[src_chunk_id])
            yield from self.ssd.write_extent(
                self._extent_of(dst_chunk_id), self.chunk_size
            )
        # Copying a reserved-but-unwritten chunk leaves the copy unwritten.

    # ------------------------------------------------------------------
    # Re-replication fill protocol (driven by the manager)
    # ------------------------------------------------------------------
    def begin_fill(self, chunk_id: int) -> None:
        """Start receiving a replica of ``chunk_id``.

        From this moment the benefactor is a *write* replica: client
        write-throughs land here and record their intervals in a fill
        shadow, so :meth:`complete_fill` patches only the bytes the copy
        snapshot still owns — a write-through that raced ahead of the
        bulk copy is never clobbered by stale snapshot data.
        """
        self._fill_shadow[chunk_id] = IntervalSet()

    def filling(self, chunk_id: int) -> bool:
        """True while a replica fill for ``chunk_id`` is in flight."""
        return chunk_id in self._fill_shadow

    def complete_fill(
        self, chunk_id: int, data: bytes | None
    ) -> Generator[Event, object, None]:
        """Land the bulk-copy snapshot taken from the surviving replica.

        ``data=None`` means the source chunk was reserved but never
        materialized — nothing to write; the replica stays unmaterialized
        too (unless a write-through already materialized it here).
        Charges the SSD write for every snapshot byte actually applied.
        """
        self._check_online()
        shadow = self._fill_shadow.pop(chunk_id)
        if data is None:
            return
        self._materialize(chunk_id)
        payload = self._exclusive(chunk_id)
        extent = self._extent_of(chunk_id)
        written = 0
        for start, stop in shadow.gaps(0, self.chunk_size):
            payload[start:stop] = data[start:stop]
            written += stop - start
        if written:
            yield from self.ssd.write_extent(extent, written)

    def abort_fill(self, chunk_id: int) -> None:
        """Drop fill state after a failed re-replication copy."""
        self._fill_shadow.pop(chunk_id, None)

    def delete_chunk(self, chunk_id: int) -> None:
        """Drop a chunk's data and recycle its extent (TRIMs the flash)."""
        self._fill_shadow.pop(chunk_id, None)
        if chunk_id in self._data:
            extent = self._extents.pop(chunk_id)
            del self._data[chunk_id]
            self.ssd.trim_extent(extent, self.chunk_size)
            self._free_extents.append(extent)

    # ------------------------------------------------------------------
    # Testing/verification access (not part of the service protocol)
    # ------------------------------------------------------------------
    def peek(self, chunk_id: int) -> bytes | None:
        """The raw stored payload, for invariant checks in tests."""
        data = self._data.get(chunk_id)
        return bytes(data) if data is not None else None

    def __repr__(self) -> str:
        return (
            f"<Benefactor {self.name} reserved={self._reserved}/{self.contribution}"
            f" chunks={len(self._data)}>"
        )
