"""Chunk constants and helpers.

The store delivers data in large chunks (default 256 KB) to amortize
network round trips; the OS page cache and the FUSE dirty-tracking work at
4 KB pages, so one chunk spans 64 pages (paper §III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KiB

CHUNK_SIZE: int = 256 * KiB
PAGE_SIZE: int = 4 * KiB
PAGES_PER_CHUNK: int = CHUNK_SIZE // PAGE_SIZE  # 64

# Size of a control (RPC) message between client, manager, and benefactor.
CONTROL_MESSAGE_BYTES: int = 256


def chunk_count(size: int, chunk_size: int = CHUNK_SIZE) -> int:
    """Number of chunks needed to hold ``size`` bytes."""
    if size < 0:
        raise ValueError(f"negative size {size}")
    return (size + chunk_size - 1) // chunk_size


@dataclass(frozen=True)
class ChunkLocation:
    """Where one chunk of a logical file lives."""

    chunk_id: int
    benefactor: str  # benefactor (node) name
