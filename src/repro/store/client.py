"""Store client: per-node access point to the aggregate NVM store.

Splits byte ranges into chunk pieces, resolves each chunk's benefactor via
the manager (with a chunk-map cache so steady-state accesses skip the
metadata round trip), and moves payload directly to/from benefactors.
Copy-on-write for checkpoint-shared chunks happens transparently on the
write path (paper §III-E).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cluster.node import Node
from repro.sim.events import Event
from repro.store.benefactor import Benefactor
from repro.store.manager import FileMeta, Manager
from repro.util.recorder import MetricsRecorder


class StoreClient:
    """Client-side protocol endpoint for one compute node."""

    def __init__(
        self,
        node: Node,
        manager: Manager,
        *,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.manager = manager
        self.chunk_size = manager.chunk_size
        self.metrics = metrics if metrics is not None else node.metrics
        # (file, generation) -> {index: (chunk_id, benefactor)}
        self._map_cache: dict[str, tuple[int, dict[int, tuple[int, Benefactor]]]] = {}
        # Hot-path counters, resolved on first use (snapshot-identical
        # to per-call ``metrics.add``).
        self._read_counter = None
        self._write_counter = None

    @property
    def client_name(self) -> str:
        """The compute node this client runs on."""
        return self.node.name

    # ------------------------------------------------------------------
    # Metadata operations
    # ------------------------------------------------------------------
    def create(self, name: str, size: int) -> Generator[Event, object, FileMeta]:
        """Create a logical file of ``size`` bytes (space reservation only)."""
        yield from self.manager.rpc(self.client_name)
        return self.manager.create_file(name, size, client=self.client_name)

    def open(self, name: str) -> Generator[Event, object, FileMeta]:
        """Look up an existing logical file."""
        yield from self.manager.rpc(self.client_name)
        return self.manager.lookup(name)

    def delete(self, name: str) -> Generator[Event, object, None]:
        """Delete a logical file (chunks freed when unshared)."""
        yield from self.manager.rpc(self.client_name)
        self.manager.delete_file(name)
        self._map_cache.pop(name, None)

    def file_size(self, name: str) -> int:
        """Logical size of a store file in bytes."""
        return self.manager.lookup(name).size

    # ------------------------------------------------------------------
    # Chunk resolution with map caching
    # ------------------------------------------------------------------
    def _resolve(
        self, name: str, index: int
    ) -> Generator[Event, object, tuple[int, Benefactor]]:
        meta = self.manager.lookup(name)
        cached = self._map_cache.get(name)
        if cached is None or cached[0] != meta.generation:
            # Cold or invalidated map: one metadata round trip refreshes it.
            yield from self.manager.rpc(self.client_name)
            cached = (meta.generation, {})
            self._map_cache[name] = cached
        mapping = cached[1]
        if index not in mapping:
            mapping[index] = self.manager.resolve_chunk(name, index)
        return mapping[index]

    def _pieces(self, offset: int, length: int) -> list[tuple[int, int, int]]:
        """Split ``[offset, offset+length)`` into (chunk_index, chunk_offset,
        piece_length) runs."""
        pieces: list[tuple[int, int, int]] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            index = cursor // self.chunk_size
            chunk_off = cursor - index * self.chunk_size
            piece = min(self.chunk_size - chunk_off, end - cursor)
            pieces.append((index, chunk_off, piece))
            cursor += piece
        return pieces

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def read(
        self, name: str, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read ``length`` bytes at ``offset`` from a logical file."""
        self._check_range(name, offset, length)
        parts: list[bytes] = []
        for index, chunk_off, piece in self._pieces(offset, length):
            chunk_id, benefactor = yield from self._resolve(name, index)
            data = yield from benefactor.fetch_chunk(
                self.client_name, chunk_id, chunk_off, piece
            )
            parts.append(data)
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "store.client.bytes_read"
            )
        counter.total += length
        counter.count += 1
        return b"".join(parts)

    def read_chunk(self, name: str, index: int) -> Generator[Event, object, bytearray]:
        """Read one whole chunk (the FUSE layer's fetch granularity).

        Returns a fresh buffer the caller owns outright (the chunk cache
        adopts it as an entry payload without another copy).
        """
        chunk_id, benefactor = yield from self._resolve(name, index)
        meta = self.manager.lookup(name)
        length = min(self.chunk_size, meta.size - index * self.chunk_size)
        data = yield from benefactor.fetch_chunk(
            self.client_name, chunk_id, 0, length
        )
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "store.client.bytes_read"
            )
        counter.total += length
        counter.count += 1
        return data

    def write(
        self, name: str, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write ``data`` at ``offset``, copy-on-write-ing shared chunks."""
        self._check_range(name, offset, len(data))
        cursor = 0
        for index, chunk_off, piece in self._pieces(offset, len(data)):
            yield from self.write_chunk_ranges(
                name, index, [(chunk_off, data[cursor : cursor + piece])]
            )
            cursor += piece

    def write_chunk_ranges(
        self, name: str, index: int, ranges: list[tuple[int, bytes]]
    ) -> Generator[Event, object, None]:
        """Write byte ranges within one chunk (dirty-page flush granularity).

        ``ranges`` is a list of ``(offset_in_chunk, payload)``.  If the
        chunk is shared with a checkpoint file, a COW replacement is
        created first so the checkpoint's view stays frozen.
        """
        chunk_id, benefactor = yield from self._resolve(name, index)
        if self.manager.chunk_refcount(chunk_id) > 1:
            yield from self.manager.rpc(self.client_name)
            old_id, new_id, owner = self.manager.cow_chunk(name, index)
            yield from owner.copy_chunk_local(old_id, new_id)
            # We initiated the COW, so our map stays warm at the new
            # generation; other sharers will refresh on their next access.
            meta = self.manager.lookup(name)
            cached = self._map_cache.get(name)
            mapping = dict(cached[1]) if cached is not None else {}
            mapping[index] = (new_id, owner)
            self._map_cache[name] = (meta.generation, mapping)
            chunk_id, benefactor = new_id, owner
        total = 0
        for chunk_off, payload in ranges:
            yield from benefactor.store_chunk(
                self.client_name, chunk_id, payload, chunk_off
            )
            total += len(payload)
        counter = self._write_counter
        if counter is None:
            counter = self._write_counter = self.metrics.counter(
                "store.client.bytes_written"
            )
        counter.total += total
        counter.count += 1

    # ------------------------------------------------------------------
    def _check_range(self, name: str, offset: int, length: int) -> None:
        meta = self.manager.lookup(name)
        if offset < 0 or length < 0 or offset + length > meta.size:
            from repro.errors import StoreError

            raise StoreError(
                f"range [{offset}, {offset + length}) outside {name!r} "
                f"of size {meta.size}"
            )

    def __repr__(self) -> str:
        return f"<StoreClient {self.client_name} -> {self.manager.name}>"
