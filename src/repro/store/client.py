"""Store client: per-node access point to the aggregate NVM store.

Splits byte ranges into chunk pieces, resolves each chunk's benefactor via
the manager (with a chunk-map cache so steady-state accesses skip the
metadata round trip), and moves payload directly to/from benefactors.
Copy-on-write for checkpoint-shared chunks happens transparently on the
write path (paper §III-E).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cluster.node import Node
from repro.errors import BenefactorDownError, ChunkUnavailableError
from repro.sim.events import Event
from repro.store.benefactor import Benefactor
from repro.store.manager import FileMeta, Manager
from repro.util.recorder import MetricsRecorder

#: Retry/failover tuning (virtual time).  A failed chunk RPC is reported
#: to the manager, the cached map is dropped, and the operation re-resolves
#: after an exponential backoff — until the attempt cap or deadline, when
#: the original error propagates (``ChunkUnavailableError`` propagates
#: immediately: no amount of retrying brings a lost chunk back).
RETRY_ATTEMPTS = 4
RETRY_BACKOFF_SECONDS = 0.0005  # first backoff; doubles per attempt
RETRY_DEADLINE_SECONDS = 1.0


class StoreClient:
    """Client-side protocol endpoint for one compute node."""

    def __init__(
        self,
        node: Node,
        manager: Manager,
        *,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.manager = manager
        self.chunk_size = manager.chunk_size
        self.metrics = metrics if metrics is not None else node.metrics
        # file -> (generation, read map {index: (chunk_id, benefactor)},
        #          write map {index: (chunk_id, [replicas])})
        self._map_cache: dict[
            str,
            tuple[
                int,
                dict[int, tuple[int, Benefactor]],
                dict[int, tuple[int, list[Benefactor]]],
            ],
        ] = {}
        # Hot-path counters, resolved on first use (snapshot-identical
        # to per-call ``metrics.add``).  The retry counter only ever
        # materializes on fault paths, keeping no-fault snapshots (and
        # hence report digests) identical to the seed.
        self._read_counter = None
        self._write_counter = None
        self._retry_counter = None

    @property
    def client_name(self) -> str:
        """The compute node this client runs on."""
        return self.node.name

    # ------------------------------------------------------------------
    # Metadata operations
    # ------------------------------------------------------------------
    def create(self, name: str, size: int) -> Generator[Event, object, FileMeta]:
        """Create a logical file of ``size`` bytes (space reservation only)."""
        yield from self.manager.rpc(self.client_name)
        return self.manager.create_file(name, size, client=self.client_name)

    def open(self, name: str) -> Generator[Event, object, FileMeta]:
        """Look up an existing logical file."""
        yield from self.manager.rpc(self.client_name)
        return self.manager.lookup(name)

    def delete(self, name: str) -> Generator[Event, object, None]:
        """Delete a logical file (chunks freed when unshared)."""
        yield from self.manager.rpc(self.client_name)
        self.manager.delete_file(name)
        self._map_cache.pop(name, None)

    def file_size(self, name: str) -> int:
        """Logical size of a store file in bytes."""
        return self.manager.lookup(name).size

    # ------------------------------------------------------------------
    # Chunk resolution with map caching
    # ------------------------------------------------------------------
    def _cached_maps(
        self, name: str
    ) -> Generator[
        Event,
        object,
        tuple[
            int,
            dict[int, tuple[int, Benefactor]],
            dict[int, tuple[int, list[Benefactor]]],
        ],
    ]:
        meta = self.manager.lookup(name)
        cached = self._map_cache.get(name)
        if cached is None or cached[0] != meta.generation:
            # Cold or invalidated map: one metadata round trip refreshes it.
            yield from self.manager.rpc(self.client_name)
            cached = (meta.generation, {}, {})
            self._map_cache[name] = cached
        return cached

    def _resolve(
        self, name: str, index: int
    ) -> Generator[Event, object, tuple[int, Benefactor]]:
        """The preferred read replica for one chunk (map-cached)."""
        cached = yield from self._cached_maps(name)
        mapping = cached[1]
        if index not in mapping:
            mapping[index] = self.manager.resolve_chunk(
                name, index, client=self.client_name
            )
        return mapping[index]

    def _resolve_write(
        self, name: str, index: int
    ) -> Generator[Event, object, tuple[int, list[Benefactor]]]:
        """All write replicas for one chunk (map-cached)."""
        cached = yield from self._cached_maps(name)
        mapping = cached[2]
        if index not in mapping:
            mapping[index] = self.manager.resolve_replicas(name, index)
        return mapping[index]

    def _report_and_backoff(
        self,
        name: str,
        benefactor: Benefactor,
        error: BenefactorDownError,
        attempt: int,
        started: float,
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_report_and_backoff_impl`, spanned when tracing is on."""
        gen = self._report_and_backoff_impl(
            name, benefactor, error, attempt, started
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "store.client", "retry", gen,
            path=name, attempt=attempt, failed=benefactor.name,
        )

    def _report_and_backoff_impl(
        self,
        name: str,
        benefactor: Benefactor,
        error: BenefactorDownError,
        attempt: int,
        started: float,
    ) -> Generator[Event, object, None]:
        """Shared failover step: report, invalidate, back off — or give up.

        Raises ``error`` once the attempt cap or deadline is exhausted;
        otherwise returns after the backoff timeout, with the map cache
        dropped so the caller re-resolves against fresh manager state.
        """
        counter = self._retry_counter
        if counter is None:
            counter = self._retry_counter = self.metrics.counter(
                "store.client.retries"
            )
        counter.total += 1
        counter.count += 1
        yield from self.manager.report_failure(self.client_name, benefactor.name)
        self._map_cache.pop(name, None)
        if (
            attempt >= RETRY_ATTEMPTS
            or self.node.engine.now - started >= RETRY_DEADLINE_SECONDS
        ):
            raise error
        yield self.node.engine.timeout(
            RETRY_BACKOFF_SECONDS * (2 ** (attempt - 1))
        )

    def _pieces(self, offset: int, length: int) -> list[tuple[int, int, int]]:
        """Split ``[offset, offset+length)`` into (chunk_index, chunk_offset,
        piece_length) runs."""
        pieces: list[tuple[int, int, int]] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            index = cursor // self.chunk_size
            chunk_off = cursor - index * self.chunk_size
            piece = min(self.chunk_size - chunk_off, end - cursor)
            pieces.append((index, chunk_off, piece))
            cursor += piece
        return pieces

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _fetch_failover(
        self, name: str, index: int, chunk_off: int, length: int,
        purpose: str = "demand",
    ) -> Generator[Event, object, bytearray]:
        """Dispatch :meth:`_fetch_failover_impl`, spanned when tracing is on."""
        gen = self._fetch_failover_impl(name, index, chunk_off, length)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        # Demand fetches keep the seed's exact attribute set; only
        # non-default purposes (prefetch) annotate the span.
        if purpose != "demand":
            return tracer.wrap(
                "store.client", "fetch", gen,
                path=name, index=index, bytes=length, purpose=purpose,
            )
        return tracer.wrap(
            "store.client", "fetch", gen,
            path=name, index=index, bytes=length,
        )

    def _fetch_failover_impl(
        self, name: str, index: int, chunk_off: int, length: int
    ) -> Generator[Event, object, bytearray]:
        """Fetch chunk bytes, failing over to surviving replicas.

        On the fault-free path this is exactly resolve + fetch (no added
        events).  A data-op :class:`BenefactorDownError` triggers the
        retry loop: report the benefactor, drop the cached map, back off,
        re-resolve (now pointing at a surviving replica or, once the
        chunk is lost, raising :class:`ChunkUnavailableError`).
        """
        attempt = 0
        started = None
        while True:
            chunk_id, benefactor = yield from self._resolve(name, index)
            try:
                return (
                    yield from benefactor.fetch_chunk(
                        self.client_name, chunk_id, chunk_off, length
                    )
                )
            except ChunkUnavailableError:
                raise
            except BenefactorDownError as error:
                if started is None:
                    started = self.node.engine.now
                attempt += 1
                yield from self._report_and_backoff(
                    name, benefactor, error, attempt, started
                )

    def read(
        self, name: str, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read ``length`` bytes at ``offset`` from a logical file."""
        self._check_range(name, offset, length)
        parts: list[bytes] = []
        for index, chunk_off, piece in self._pieces(offset, length):
            data = yield from self._fetch_failover(name, index, chunk_off, piece)
            parts.append(data)
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "store.client.bytes_read"
            )
        counter.total += length
        counter.count += 1
        return b"".join(parts)

    def read_chunk(
        self, name: str, index: int, *, purpose: str = "demand"
    ) -> Generator[Event, object, bytearray]:
        """Read one whole chunk (the FUSE layer's fetch granularity).

        Returns a fresh buffer the caller owns outright (the chunk cache
        adopts it as an entry payload without another copy).  ``purpose``
        labels the fetch span when tracing is on ("demand"/"prefetch");
        it changes no simulated behaviour.
        """
        meta = self.manager.lookup(name)
        length = min(self.chunk_size, meta.size - index * self.chunk_size)
        data = yield from self._fetch_failover(name, index, 0, length, purpose)
        counter = self._read_counter
        if counter is None:
            counter = self._read_counter = self.metrics.counter(
                "store.client.bytes_read"
            )
        counter.total += length
        counter.count += 1
        return data

    def write(
        self, name: str, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write ``data`` at ``offset``, copy-on-write-ing shared chunks."""
        self._check_range(name, offset, len(data))
        cursor = 0
        for index, chunk_off, piece in self._pieces(offset, len(data)):
            yield from self.write_chunk_ranges(
                name, index, [(chunk_off, data[cursor : cursor + piece])]
            )
            cursor += piece

    def write_chunk_ranges(
        self, name: str, index: int, ranges: list[tuple[int, bytes]]
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_write_chunk_ranges_impl`, spanned when tracing is on."""
        gen = self._write_chunk_ranges_impl(name, index, ranges)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "store.client", "write", gen,
            path=name, index=index,
            bytes=sum(len(payload) for _, payload in ranges),
        )

    def _write_chunk_ranges_impl(
        self, name: str, index: int, ranges: list[tuple[int, bytes]]
    ) -> Generator[Event, object, None]:
        """Write byte ranges within one chunk (dirty-page flush granularity).

        ``ranges`` is a list of ``(offset_in_chunk, payload)``.  If the
        chunk is shared with a checkpoint file, a COW replacement is
        created first so the checkpoint's view stays frozen.  The payload
        is propagated to every live replica; a replica dying mid-write
        triggers the failover loop (re-sending a range to a replica that
        already has it is idempotent).
        """
        attempt = 0
        started = None
        while True:
            chunk_id, replicas = yield from self._resolve_write(name, index)
            if self.manager.chunk_refcount(chunk_id) > 1:
                yield from self.manager.rpc(self.client_name)
                old_id, chunk_id, _primary = self.manager.cow_chunk(name, index)
                yield from self._cow_copy(old_id, chunk_id)
                # We initiated the COW, so our map stays warm at the new
                # generation; other sharers will refresh on their next access.
                meta = self.manager.lookup(name)
                cached = self._map_cache.get(name)
                read_map = dict(cached[1]) if cached is not None else {}
                write_map = dict(cached[2]) if cached is not None else {}
                replicas = [
                    b
                    for b in self.manager.chunk_replicas(chunk_id)
                    if b.online
                ]
                read_map[index] = (chunk_id, self._prefer(replicas))
                write_map[index] = (chunk_id, replicas)
                self._map_cache[name] = (meta.generation, read_map, write_map)
            benefactor = replicas[0]
            try:
                total = 0
                for chunk_off, payload in ranges:
                    for benefactor in replicas:
                        yield from benefactor.store_chunk(
                            self.client_name, chunk_id, payload, chunk_off
                        )
                    total += len(payload)
            except ChunkUnavailableError:
                raise
            except BenefactorDownError as error:
                if started is None:
                    started = self.node.engine.now
                attempt += 1
                yield from self._report_and_backoff(
                    name, benefactor, error, attempt, started
                )
                continue
            break
        counter = self._write_counter
        if counter is None:
            counter = self._write_counter = self.metrics.counter(
                "store.client.bytes_written"
            )
        counter.total += total
        counter.count += 1

    def _prefer(self, replicas: list[Benefactor]) -> Benefactor:
        """Read preference among live replicas: co-located, else first."""
        for benefactor in replicas:
            if benefactor.name == self.client_name:
                return benefactor
        return replicas[0]

    def _cow_copy(
        self, old_id: int, new_id: int
    ) -> Generator[Event, object, None]:
        """Materialize a COW replacement on every live replica.

        A replica dying mid-copy is reported (the manager forfeits it,
        striking it from the new chunk's replica list) and the copy
        continues on the survivors; replicas already copied are skipped.
        """
        copied: set[str] = set()
        attempt = 0
        started = None
        while True:
            replicas = [
                b
                for b in self.manager.chunk_replicas(new_id)
                if b.online and b.name not in copied
            ]
            benefactor = None
            try:
                for benefactor in replicas:
                    yield from benefactor.copy_chunk_local(old_id, new_id)
                    copied.add(benefactor.name)
            except ChunkUnavailableError:
                raise
            except BenefactorDownError as error:
                if started is None:
                    started = self.node.engine.now
                attempt += 1
                yield from self.manager.report_failure(
                    self.client_name, benefactor.name
                )
                if (
                    attempt >= RETRY_ATTEMPTS
                    or self.node.engine.now - started >= RETRY_DEADLINE_SECONDS
                ):
                    raise error
                continue
            return

    # ------------------------------------------------------------------
    def _check_range(self, name: str, offset: int, length: int) -> None:
        meta = self.manager.lookup(name)
        if offset < 0 or length < 0 or offset + length > meta.size:
            from repro.errors import StoreError

            raise StoreError(
                f"range [{offset}, {offset + length}) outside {name!r} "
                f"of size {meta.size}"
            )

    def __repr__(self) -> str:
        return f"<StoreClient {self.client_name} -> {self.manager.name}>"
