"""Aggregate NVM store (the FreeLoader/stdchk-lineage substrate, paper §II).

Compute nodes equipped with SSDs run a *benefactor* that contributes
node-local NVM space; a *manager* aggregates the contributions into one
logical store: it allocates space, stripes logical files across benefactors
as fixed-size chunks (256 KB default), maintains the chunk map, monitors
benefactor health, and reference-counts chunks so checkpoint files can
*link* a memory-mapped variable's chunks instead of copying them (§III-E).

Clients resolve chunk locations through the manager, then move chunk data
directly to/from the owning benefactor.  Payload bytes are real; device and
network time is charged through the simulation substrate.
"""

from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE, ChunkLocation, chunk_count
from repro.store.benefactor import Benefactor
from repro.store.manager import FileMeta, Manager
from repro.store.client import (
    RETRY_ATTEMPTS,
    RETRY_BACKOFF_SECONDS,
    RETRY_DEADLINE_SECONDS,
    StoreClient,
)
from repro.store.striping import (
    LocalFirstStriping,
    RoundRobinStriping,
    StripingPolicy,
)

__all__ = [
    "Benefactor",
    "CHUNK_SIZE",
    "ChunkLocation",
    "FileMeta",
    "LocalFirstStriping",
    "Manager",
    "PAGE_SIZE",
    "RETRY_ATTEMPTS",
    "RETRY_BACKOFF_SECONDS",
    "RETRY_DEADLINE_SECONDS",
    "RoundRobinStriping",
    "StoreClient",
    "StripingPolicy",
    "chunk_count",
]
