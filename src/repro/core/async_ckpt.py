"""Asynchronous checkpoint pipeline: CoW snapshots with a background drain.

``ssdcheckpoint_async`` freezes a checkpoint's *layout* in a short
foreground phase (clean chunks linked by reference, dirty chunks given
fresh space) and returns an :class:`AsyncCheckpoint` handle; a background
drainer then stages each dirty chunk's snapshot bytes and streams them to
the store while the application computes.

Consistency rule: a :class:`SnapshotGuard` sits on the page-cache write
path of each guarded variable.  A write that lands on a chunk the drainer
has not yet captured first triggers a *copy-on-write capture* — the
snapshot bytes are staged before the new data becomes visible — so the
checkpoint observes exactly the bytes that existed when it was initiated.
Staging memory is bounded: app-triggered captures block on backpressure
until the drainer frees room (drainer-side captures stream straight out
and ignore the bound, which guarantees forward progress).

Writes to chunks that were *linked* (clean at initiation) need no guard:
linking raises the store-side refcount, so the normal flush path
copy-on-writes them in the store (paper §III-E), leaving the checkpoint's
frozen chunk untouched.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.errors import CheckpointError
from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.core.checkpoint import CheckpointRecord
    from repro.mem.pagecache import PageCache
    from repro.sim.engine import Engine


class MutationTracker:
    """Records which chunks of a backing path were written since reset.

    Registered as a page-cache write hook once a variable joins an async
    checkpoint chain: the next epoch's dirty diff is exactly the chunks
    touched since the previous epoch's initiation, so every untouched
    chunk can be *linked to the prior epoch's frozen chunk* instead of
    re-written.  Pure metadata — observing a write adds no simulated
    events or time.
    """

    def __init__(self, chunk_size: int) -> None:
        self.chunk_size = chunk_size
        self.touched: set[int] = set()

    def before_write(
        self, offset: int, length: int
    ) -> Generator[Event, object, None]:
        first = offset // self.chunk_size
        last = (offset + length - 1) // self.chunk_size
        self.touched.update(range(first, last + 1))
        return
        yield  # pragma: no cover - makes this a (never-yielding) generator

    def reset(self) -> set[int]:
        """Start a new epoch interval; returns the touches so far."""
        touched, self.touched = self.touched, set()
        return touched


class SnapshotGuard:
    """CoW snapshot protector for one backing path during an async drain.

    Registered on the :class:`~repro.mem.pagecache.PageCache` for the
    guarded path; every write is routed through :meth:`before_write`
    until the drainer finishes the path and unregisters the guard.
    """

    def __init__(
        self,
        engine: "Engine",
        pagecache: "PageCache",
        path: str,
        *,
        chunk_size: int,
        chunk_lengths: dict[int, int],
        staging_limit: int,
    ) -> None:
        self._engine = engine
        self._pagecache = pagecache
        self.path = path
        self.chunk_size = chunk_size
        # chunk index -> meaningful bytes within the chunk, for every
        # dirty chunk awaiting capture.
        self.chunk_lengths = dict(chunk_lengths)
        self.pending: set[int] = set(self.chunk_lengths)
        self.staged: dict[int, bytearray] = {}
        # Room for at least one chunk, or nothing could ever stage.
        self.staging_limit = max(staging_limit, chunk_size)
        self.staging_used = 0
        self.staging_peak = 0
        self.cow_captures = 0
        self._capturing: dict[int, Event] = {}
        self._room: list[Event] = []
        self._cancelled = False

    # -- page-cache hook ------------------------------------------------
    def before_write(
        self, offset: int, length: int
    ) -> Generator[Event, object, None]:
        """Capture every still-pending chunk the write touches."""
        first = offset // self.chunk_size
        last = (offset + length - 1) // self.chunk_size
        for index in range(first, last + 1):
            yield from self._settle(index, app=True)

    # -- internals ------------------------------------------------------
    def _settle(
        self, index: int, *, app: bool
    ) -> Generator[Event, object, None]:
        """Wait out / perform any capture chunk ``index`` still needs."""
        while True:
            waiter = self._capturing.get(index)
            if waiter is not None:
                # Someone else is mid-capture of this chunk: a write must
                # not land until the snapshot bytes are safely staged.
                yield waiter
                continue
            if index in self.pending and not self._cancelled:
                yield from self._capture(index, bounded=app)
                continue
            return

    def _capture(
        self, index: int, *, bounded: bool
    ) -> Generator[Event, object, None]:
        length = self.chunk_lengths[index]
        if bounded:
            # Backpressure: app-triggered captures wait for staging room.
            # The chunk stays in ``pending`` while we wait, so the
            # drainer can capture it itself (its captures ignore the
            # bound and drain immediately) — no deadlock.
            while self.staging_used + length > self.staging_limit:
                if index not in self.pending or self._cancelled:
                    return
                room = self._engine.event()
                self._room.append(room)
                yield room
            if index not in self.pending or self._cancelled:
                return
        done = self._engine.event()
        self._capturing[index] = done
        self.pending.discard(index)
        try:
            data = yield from self._pagecache.read(
                self.path, index * self.chunk_size, length
            )
            self.staged[index] = data
            self.staging_used += length
            if self.staging_used > self.staging_peak:
                self.staging_peak = self.staging_used
            if bounded:
                self.cow_captures += 1
        finally:
            del self._capturing[index]
            done.succeed()

    def _wake_room(self) -> None:
        waiters, self._room = self._room, []
        for waiter in waiters:
            waiter.succeed()

    # -- drainer side ---------------------------------------------------
    def take(self, index: int) -> Generator[Event, object, bytearray]:
        """The snapshot bytes of chunk ``index`` (capturing on demand)."""
        yield from self._settle(index, app=False)
        data = self.staged.pop(index, None)
        if data is None:
            raise CheckpointError(
                f"async checkpoint lost the snapshot of chunk {index} "
                f"of {self.path!r}"
            )
        self.staging_used -= len(data)
        self._wake_room()
        return data

    def cancel(self) -> None:
        """Abandon the snapshot: release pending chunks and waiters."""
        self._cancelled = True
        self.pending.clear()
        self._wake_room()


class AsyncCheckpoint:
    """Handle for an in-flight asynchronous checkpoint.

    Returned by ``ssdcheckpoint_async`` once the foreground snapshot
    phase has frozen the layout; ``yield from handle.wait()`` joins the
    background drain, returning the finished
    :class:`~repro.core.checkpoint.CheckpointRecord` or re-raising the
    drain's failure (in which case the epoch was never committed and
    restores fall back to its parent).
    """

    def __init__(
        self,
        engine: "Engine",
        tag: str,
        timestep: int,
        record: "CheckpointRecord",
        guards: dict[str, SnapshotGuard],
    ) -> None:
        self._engine = engine
        self.tag = tag
        self.timestep = timestep
        self.record = record
        self.guards = guards
        self.finished = False
        self.error: BaseException | None = None
        self.process = None  # set by the initiator
        self._done = engine.event()

    @property
    def draining(self) -> bool:
        """True while the background drain is still running."""
        return not self.finished

    @property
    def cow_captures(self) -> int:
        """App writes that triggered a copy-on-write snapshot capture."""
        return sum(g.cow_captures for g in self.guards.values())

    @property
    def staging_peak(self) -> int:
        """High-water mark of staged snapshot bytes across guards."""
        return max((g.staging_peak for g in self.guards.values()), default=0)

    def _finish(self, error: BaseException | None) -> None:
        self.finished = True
        self.error = error
        self._done.succeed()

    def wait(self) -> Generator[Event, object, "CheckpointRecord"]:
        """Join the drain; returns the record or re-raises its failure."""
        if not self.finished:
            yield self._done
        if self.error is not None:
            raise self.error
        return self.record

    def __repr__(self) -> str:
        state = "done" if self.finished else "draining"
        if self.error is not None:
            state = "failed"
        return f"<AsyncCheckpoint {self.tag}@{self.timestep} {state}>"
