"""The NVMalloc library context (paper §III).

One :class:`NVMalloc` instance per compute node wires together the node's
FUSE mount, the OS page-cache model, and the aggregate-store manager, and
exposes the paper's service suite:

- :meth:`ssdmalloc` / :meth:`ssdfree` — explicit allocation of memory
  regions on the distributed NVM store, returned as byte-addressable
  memory-mapped variables (optionally *shared* between processes of the
  node, the Fig. 4 optimization);
- :meth:`ssdmalloc_array` / :meth:`dram_array` — typed array views with a
  uniform interface, so placement is an explicit one-line decision;
- :meth:`ssdcheckpoint` / :meth:`restore` — one logical restart file per
  timestep that *links* NVM-resident chunks instead of copying them, with
  copy-on-write protection and automatic incremental checkpointing.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator, Sequence

import numpy as np

from repro.cluster.node import Node
from repro.core.checkpoint import CheckpointRecord, CheckpointSection
from repro.core.variable import DRAMArray, NVMArray, NVMVariable
from repro.errors import (
    AllocationError,
    CheckpointError,
    FileExistsInStoreError,
    NVMallocError,
)
from repro.fusefs.flags import OpenFlags
from repro.fusefs.mount import FuseMount
from repro.mem.mmap import MmapRegion, Protection
from repro.mem.pagecache import PageCache
from repro.sim.events import Event
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.store.manager import Manager
from repro.util.recorder import MetricsRecorder
from repro.util.units import MiB

MOUNT_POINT = "/mnt/aggregatenvm"


class NVMalloc:
    """Per-node NVMalloc library context."""

    def __init__(
        self,
        node: Node,
        manager: Manager,
        *,
        fuse_cache_bytes: int = 64 * MiB,
        page_cache_bytes: int = 64 * MiB,
        chunk_size: int = CHUNK_SIZE,
        page_size: int = PAGE_SIZE,
        dirty_page_writeback: bool = True,
        readahead_chunks: int = 0,
        daemon_threads: int = 1,
        cache_policy: str = "lru",
        local_cache_bytes: int = 0,
        prefetch: str = "fixed",
        prefetch_depth: int = 8,
        fuse_op_overhead: float = PageCache.FUSE_OP_OVERHEAD,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.engine = node.engine
        self.manager = manager
        self.metrics = metrics if metrics is not None else node.metrics
        self.mount = FuseMount(
            node,
            manager,
            cache_bytes=fuse_cache_bytes,
            chunk_size=chunk_size,
            page_size=page_size,
            dirty_page_writeback=dirty_page_writeback,
            readahead_chunks=readahead_chunks,
            daemon_threads=daemon_threads,
            cache_policy=cache_policy,
            local_cache_bytes=local_cache_bytes,
            prefetch=prefetch,
            prefetch_depth=prefetch_depth,
            metrics=self.metrics,
        )
        self.pagecache = PageCache(
            self.mount,
            capacity_bytes=page_cache_bytes,
            page_size=page_size,
            fuse_op_overhead=fuse_op_overhead,
            metrics=self.metrics,
        )
        self.chunk_size = chunk_size
        self._seq = itertools.count(1)
        # backing path -> number of live mappings (shared allocations).
        self._mapping_refs: dict[str, int] = {}
        # Paths whose lifetime outlives their mappings (§III-C sharing).
        self._persistent_paths: set[str] = set()
        self._checkpoints: dict[tuple[str, int], CheckpointRecord] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _backing_path(
        self, shared_key: str | None, owner: str, persistent_name: str | None
    ) -> str:
        if persistent_name is not None:
            return f"{MOUNT_POINT}/persistent/{persistent_name}"
        if shared_key is not None:
            return f"{MOUNT_POINT}/nvmalloc/shared/{shared_key}"
        return f"{MOUNT_POINT}/nvmalloc/{self.node.name}/{owner}/{next(self._seq)}"

    def ssdmalloc(
        self,
        nbytes: int,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        private: bool = False,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMVariable]:
        """Dispatch :meth:`_ssdmalloc_impl`, spanned when tracing is on."""
        gen = self._ssdmalloc_impl(
            nbytes,
            owner=owner,
            shared_key=shared_key,
            private=private,
            persistent_name=persistent_name,
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("nvmalloc", "ssdmalloc", gen, bytes=nbytes)

    def _ssdmalloc_impl(
        self,
        nbytes: int,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        private: bool = False,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMVariable]:
        """Allocate ``nbytes`` from the aggregate NVM store.

        Creates (or, for an existing ``shared_key``, opens) an internal
        file on the store and memory-maps it, returning the mapped
        variable; the client never sees the file name.  ``shared_key``
        lets multiple processes map one backing file — the read-only
        matrix-B optimization of Fig. 4.  ``private=True`` gives
        ``MAP_PRIVATE`` (copy-on-write, never checkpointable) semantics.

        ``persistent_name`` gives the variable a *lifetime beyond the
        run* (paper §III-C's workflow/in-situ sharing idea): the backing
        file survives ``ssdfree`` and can be re-opened — from any node —
        with :meth:`open_persistent`, or dropped with
        :meth:`unlink_persistent`.
        """
        if nbytes <= 0:
            raise AllocationError(f"ssdmalloc of {nbytes} bytes")
        if persistent_name is not None and shared_key is not None:
            raise AllocationError(
                "persistent_name and shared_key are mutually exclusive"
            )
        path = self._backing_path(shared_key, owner, persistent_name)
        existing = self.manager.exists(path)
        if existing:
            if shared_key is None and persistent_name is None:
                raise AllocationError(f"internal name collision on {path!r}")
            if persistent_name is not None:
                raise AllocationError(
                    f"persistent variable {persistent_name!r} already exists; "
                    "use open_persistent() to map it"
                )
            if self.manager.lookup(path).size < nbytes:
                raise AllocationError(
                    f"shared allocation {shared_key!r} exists with smaller size"
                )
            fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
        else:
            try:
                fd = yield from self.mount.open(
                    path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=nbytes
                )
            except FileExistsInStoreError:
                # Another process on this node raced us to create the
                # shared mapping between our existence check and the
                # create RPC; fall back to opening it.
                if shared_key is None:
                    raise
                fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
            else:
                # The paper intimates the buffer size to the store with
                # posix_fallocate(); creation reserved it, this validates.
                yield from self.mount.fallocate(fd, nbytes)
        region = MmapRegion(
            self.pagecache,
            path,
            nbytes,
            prot=Protection.PROT_READ | Protection.PROT_WRITE,
            shared=not private,
        )
        self._mapping_refs[path] = self._mapping_refs.get(path, 0) + 1
        if persistent_name is not None:
            self._persistent_paths.add(path)
        yield from self.mount.close(fd)
        self.metrics.add("nvmalloc.ssdmalloc.bytes", nbytes)
        self.metrics.add("nvmalloc.ssdmalloc.calls")
        return NVMVariable(region, owner=owner, backing_path=path)

    def open_persistent(
        self, persistent_name: str, *, owner: str = "app"
    ) -> Generator[Event, object, NVMVariable]:
        """Map an existing persistent variable (possibly created by a
        previous job or on another node) into this process."""
        path = f"{MOUNT_POINT}/persistent/{persistent_name}"
        if not self.manager.exists(path):
            raise AllocationError(
                f"no persistent variable {persistent_name!r} on the store"
            )
        fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
        nbytes = self.mount.stat_size(path)
        region = MmapRegion(
            self.pagecache,
            path,
            nbytes,
            prot=Protection.PROT_READ | Protection.PROT_WRITE,
            shared=True,
        )
        self._mapping_refs[path] = self._mapping_refs.get(path, 0) + 1
        self._persistent_paths.add(path)
        yield from self.mount.close(fd)
        return NVMVariable(region, owner=owner, backing_path=path)

    def unlink_persistent(self, persistent_name: str) -> Generator[Event, object, None]:
        """Remove a persistent variable's backing file from the store.

        Fails while mappings created through this context are live.
        """
        path = f"{MOUNT_POINT}/persistent/{persistent_name}"
        if self._mapping_refs.get(path):
            raise NVMallocError(
                f"persistent variable {persistent_name!r} still mapped"
            )
        self._persistent_paths.discard(path)
        self.mount.cache.invalidate_path(path)
        yield from self.mount.unlink(path)

    def ssdfree(self, variable: NVMVariable) -> Generator[Event, object, None]:
        """Release an allocation: unmap, and unlink the backing file when
        the last mapping on this node drops.

        If the variable's chunks are linked into a checkpoint, the store's
        refcounts keep the checkpoint intact; only the variable's own
        references are released (§III-E persistence rules).
        """
        path = variable.backing_path
        if path not in self._mapping_refs:
            raise NVMallocError(f"ssdfree of unknown variable over {path!r}")
        yield from variable.region.munmap()
        yield from self.mount.cache.flush_path(path)
        self._mapping_refs[path] -= 1
        if self._mapping_refs[path] == 0:
            del self._mapping_refs[path]
            if path in self._persistent_paths:
                # Persistent variables outlive their mappings: keep the
                # backing file, just drop our cached chunks.
                self.mount.cache.invalidate_path(path)
            else:
                self.mount.cache.invalidate_path(path)
                yield from self.mount.unlink(path)
        self.metrics.add("nvmalloc.ssdfree.calls")

    # ------------------------------------------------------------------
    # Typed-array conveniences
    # ------------------------------------------------------------------
    def ssdmalloc_array(
        self,
        shape: tuple[int, ...] | Sequence[int],
        dtype: object = np.float64,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMArray]:
        """Allocate a typed array on the NVM store."""
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        variable = yield from self.ssdmalloc(
            nbytes, owner=owner, shared_key=shared_key,
            persistent_name=persistent_name,
        )
        return NVMArray(variable, shape, np.dtype(dtype))

    def dram_array(
        self, shape: tuple[int, ...] | Sequence[int], dtype: object = np.float64
    ) -> DRAMArray:
        """Allocate a typed array in node-local DRAM (budget-checked)."""
        shape = tuple(int(s) for s in shape)
        return DRAMArray(self.node.dram, shape, np.dtype(dtype))

    # ------------------------------------------------------------------
    # Checkpointing (paper §III-E)
    # ------------------------------------------------------------------
    def _checkpoint_path(self, tag: str, timestep: int) -> str:
        return f"{MOUNT_POINT}/checkpoints/{tag}.{timestep}"

    def ssdcheckpoint(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
    ) -> Generator[Event, object, CheckpointRecord]:
        """Dispatch :meth:`_ssdcheckpoint_impl`, spanned when tracing is on."""
        gen = self._ssdcheckpoint_impl(
            tag, timestep, dram_state, variables, layout=layout
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "ssdcheckpoint", gen, tag=tag, timestep=timestep
        )

    def _ssdcheckpoint_impl(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
    ) -> Generator[Event, object, CheckpointRecord]:
        """Checkpoint DRAM state and NVM variables into one restart file.

        The DRAM image is physically written to the store; each variable
        is flushed (so its chunks reflect current contents) and then its
        chunks are *linked* into the checkpoint file — zero copy, zero
        extra NVM wear.  Subsequent writes to the variables trigger
        copy-on-write in the store, so the checkpoint stays frozen.

        ``layout`` optionally orders the sections within the restart file
        (the §III-E "user may wish to specify the layout" hook): a
        permutation of ``["__dram__", <variable labels...>]``.  Default:
        DRAM image first, then variables in argument order.
        """
        key = (tag, timestep)
        if key in self._checkpoints:
            raise CheckpointError(f"checkpoint {tag}@{timestep} already exists")
        var_map: dict[str, NVMVariable] = {}
        for label, variable in variables:
            if label == "__dram__" or label in var_map:
                raise CheckpointError(f"duplicate/reserved section label {label!r}")
            var_map[label] = variable
        section_order = (
            list(layout) if layout is not None
            else ["__dram__", *var_map.keys()]
        )
        if sorted(section_order) != sorted(["__dram__", *var_map.keys()]):
            raise CheckpointError(
                f"layout {section_order!r} must be a permutation of "
                f"['__dram__', {', '.join(map(repr, var_map))}]"
            )
        # Fail fast on unrecoverable data loss: a variable whose chunk has
        # no surviving replica can never be flushed or linked.  Degraded
        # variables (fewer replicas than configured, but readable) proceed
        # normally — the client's failover path serves them.
        lost: set[int] = set()
        for variable in var_map.values():
            lost.update(self.manager.lost_chunks(variable.backing_path))
        if lost:
            raise CheckpointError(
                f"checkpoint {tag}@{timestep}: chunks {sorted(lost)} have "
                "no surviving replica",
                lost_chunks=tuple(sorted(lost)),
            )
        path = self._checkpoint_path(tag, timestep)
        dram_len = len(dram_state)
        fd = yield from self.mount.open(
            path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=0
        )
        sections: list[CheckpointSection] = []
        record = CheckpointRecord(
            tag=tag, timestep=timestep, path=path, sections=sections
        )
        for name in section_order:
            if name == "__dram__":
                yield from self.manager.rpc(self.node.name)
                offset = self.manager.extend_file(
                    path, dram_len, client=self.node.name
                )
                if dram_len:
                    yield from self.mount.pwrite(fd, offset, dram_state)
                sections.append(
                    CheckpointSection(
                        "__dram__", offset=offset, length=dram_len, linked=False
                    )
                )
                record.bytes_written += dram_len
            else:
                variable = var_map[name]
                if not variable.region.shared:
                    raise CheckpointError(
                        f"variable {name!r} is MAP_PRIVATE; checkpointing "
                        "requires MAP_SHARED (paper §III-C)"
                    )
                # Flush app-side caches so the store holds current bytes.
                yield from variable.region.msync()
                yield from self.mount.cache.flush_path(variable.backing_path)
                meta_before = self.manager.lookup(path)
                offset = meta_before.num_chunks * self.chunk_size
                self.manager.link_chunks(path, variable.backing_path)
                sections.append(
                    CheckpointSection(
                        name, offset=offset, length=variable.nbytes, linked=True
                    )
                )
                record.bytes_linked += variable.nbytes
        yield from self.mount.fsync(fd)
        yield from self.mount.close(fd)
        self._checkpoints[key] = record
        self.metrics.add("nvmalloc.checkpoint.bytes_written", record.bytes_written)
        self.metrics.add("nvmalloc.checkpoint.bytes_linked", record.bytes_linked)
        self.metrics.add("nvmalloc.checkpoint.calls")
        return record

    def checkpoint_record(self, tag: str, timestep: int) -> CheckpointRecord:
        """The record of checkpoint ``tag``@``timestep`` (raises when absent)."""
        try:
            return self._checkpoints[(tag, timestep)]
        except KeyError:
            raise CheckpointError(f"no checkpoint {tag}@{timestep}") from None

    def restore(
        self, tag: str, timestep: int
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Dispatch :meth:`_restore_impl`, spanned when tracing is on."""
        gen = self._restore_impl(tag, timestep)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "restore", gen, tag=tag, timestep=timestep
        )

    def _restore_impl(
        self, tag: str, timestep: int
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Read a checkpoint back: ``(dram_state, {label: variable_bytes})``.

        Reads go through the normal FUSE path (a restart would fault the
        data in the same way).
        """
        record = self.checkpoint_record(tag, timestep)
        fd = yield from self.mount.open(record.path, OpenFlags.O_RDONLY)
        dram_sec = record.dram_section
        dram_state = yield from self.mount.pread(fd, dram_sec.offset, dram_sec.length)
        variables: dict[str, bytes] = {}
        for sec in record.variable_sections:
            variables[sec.name] = yield from self.mount.pread(
                fd, sec.offset, sec.length
            )
        yield from self.mount.close(fd)
        return dram_state, variables

    def drain_checkpoint_to_pfs(
        self,
        tag: str,
        timestep: int,
        pfs,
        *,
        dest: str | None = None,
        block_bytes: int = 1024 * 1024,
    ) -> Generator[Event, object, str]:
        """Copy a checkpoint from the aggregate store to the center PFS.

        The paper's deployment story (§III-E): checkpoint to the fast NVM
        store, then *drain to the PFS in the background* for durability.
        Spawn this generator as its own simulation process to overlap the
        drain with subsequent compute:

            engine.process(lib.drain_checkpoint_to_pfs("app", 3, pfs))

        Returns the PFS file name.
        """
        record = self.checkpoint_record(tag, timestep)
        if dest is None:
            dest = f"scratch/checkpoints/{tag}.{timestep}"
        total = self.manager.lookup(record.path).size
        pfs.create(dest, total)
        fd = yield from self.mount.open(record.path, OpenFlags.O_RDONLY)
        for offset in range(0, total, block_bytes):
            length = min(block_bytes, total - offset)
            data = yield from self.mount.pread(fd, offset, length)
            yield from pfs.write(self.node.name, dest, offset, data)
        yield from self.mount.close(fd)
        self.metrics.add("nvmalloc.checkpoint.drained_bytes", total)
        return dest

    def restore_from_pfs(
        self,
        tag: str,
        timestep: int,
        pfs,
        *,
        source: str | None = None,
        block_bytes: int = 1024 * 1024,
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Restore a checkpoint from its drained PFS copy.

        The disaster-recovery path of the §III-E story: the NVM store's
        copy may be gone (node failures, space reclaimed), but the copy
        `drain_checkpoint_to_pfs` pushed to the center-wide scratch
        survives.  Returns ``(dram_state, {label: variable_bytes})`` like
        :meth:`restore`, reading through the PFS instead of the store.
        """
        record = self.checkpoint_record(tag, timestep)
        if source is None:
            source = f"scratch/checkpoints/{tag}.{timestep}"
        if not pfs.exists(source):
            raise CheckpointError(
                f"no drained copy of {tag}@{timestep} at {source!r}"
            )

        def read_section(offset: int, length: int) -> Generator[Event, object, bytes]:
            parts: list[bytes] = []
            for block_off in range(0, length, block_bytes):
                take = min(block_bytes, length - block_off)
                parts.append(
                    (
                        yield from pfs.read(
                            self.node.name, source, offset + block_off, take
                        )
                    )
                )
            return b"".join(parts)

        dram_sec = record.dram_section
        dram_state = yield from read_section(dram_sec.offset, dram_sec.length)
        variables: dict[str, bytes] = {}
        for sec in record.variable_sections:
            variables[sec.name] = yield from read_section(sec.offset, sec.length)
        return dram_state, variables

    def delete_checkpoint(self, tag: str, timestep: int) -> Generator[Event, object, None]:
        """Remove a checkpoint file (linked chunks survive if still used)."""
        record = self._checkpoints.pop((tag, timestep), None)
        if record is None:
            raise CheckpointError(f"no checkpoint {tag}@{timestep}")
        yield from self.mount.unlink(record.path)

    def __repr__(self) -> str:
        return f"<NVMalloc on {self.node.name}>"
