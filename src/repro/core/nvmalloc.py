"""The NVMalloc library context (paper §III).

One :class:`NVMalloc` instance per compute node wires together the node's
FUSE mount, the OS page-cache model, and the aggregate-store manager, and
exposes the paper's service suite:

- :meth:`ssdmalloc` / :meth:`ssdfree` — explicit allocation of memory
  regions on the distributed NVM store, returned as byte-addressable
  memory-mapped variables (optionally *shared* between processes of the
  node, the Fig. 4 optimization);
- :meth:`ssdmalloc_array` / :meth:`dram_array` — typed array views with a
  uniform interface, so placement is an explicit one-line decision;
- :meth:`ssdcheckpoint` / :meth:`restore` — one logical restart file per
  timestep that *links* NVM-resident chunks instead of copying them, with
  copy-on-write protection and automatic incremental checkpointing.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator, Sequence

import numpy as np

from repro.cluster.node import Node
from repro.core.async_ckpt import AsyncCheckpoint, MutationTracker, SnapshotGuard
from repro.core.checkpoint import CheckpointRecord, CheckpointSection
from repro.core.variable import DRAMArray, NVMArray, NVMVariable
from repro.devices.base import AccessKind
from repro.errors import (
    AllocationError,
    CheckpointError,
    ChunkUnavailableError,
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    LostChunk,
    NVMallocError,
    RestoreError,
    StoreError,
)
from repro.fusefs.flags import OpenFlags
from repro.fusefs.mount import FuseMount
from repro.mem.mmap import MmapRegion, Protection
from repro.mem.pagecache import PageCache
from repro.sim.events import Event
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.store.manager import Manager
from repro.util.recorder import MetricsRecorder
from repro.util.units import MiB

#: Checkpoint modes accepted by :meth:`NVMalloc.ssdcheckpoint`.
CHECKPOINT_MODES = ("incremental", "full")

MOUNT_POINT = "/mnt/aggregatenvm"


class NVMalloc:
    """Per-node NVMalloc library context."""

    def __init__(
        self,
        node: Node,
        manager: Manager,
        *,
        fuse_cache_bytes: int = 64 * MiB,
        page_cache_bytes: int = 64 * MiB,
        chunk_size: int = CHUNK_SIZE,
        page_size: int = PAGE_SIZE,
        dirty_page_writeback: bool = True,
        readahead_chunks: int = 0,
        daemon_threads: int = 1,
        cache_policy: str = "lru",
        local_cache_bytes: int = 0,
        prefetch: str = "fixed",
        prefetch_depth: int = 8,
        fuse_op_overhead: float = PageCache.FUSE_OP_OVERHEAD,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.engine = node.engine
        self.manager = manager
        self.metrics = metrics if metrics is not None else node.metrics
        self.mount = FuseMount(
            node,
            manager,
            cache_bytes=fuse_cache_bytes,
            chunk_size=chunk_size,
            page_size=page_size,
            dirty_page_writeback=dirty_page_writeback,
            readahead_chunks=readahead_chunks,
            daemon_threads=daemon_threads,
            cache_policy=cache_policy,
            local_cache_bytes=local_cache_bytes,
            prefetch=prefetch,
            prefetch_depth=prefetch_depth,
            metrics=self.metrics,
        )
        self.pagecache = PageCache(
            self.mount,
            capacity_bytes=page_cache_bytes,
            page_size=page_size,
            fuse_op_overhead=fuse_op_overhead,
            metrics=self.metrics,
        )
        self.chunk_size = chunk_size
        self._seq = itertools.count(1)
        # backing path -> number of live mappings (shared allocations).
        self._mapping_refs: dict[str, int] = {}
        # Paths whose lifetime outlives their mappings (§III-C sharing).
        self._persistent_paths: set[str] = set()
        self._checkpoints: dict[tuple[str, int], CheckpointRecord] = {}
        # (tag, section label) -> the chunk ids frozen into the last
        # epoch of the chain (None marks a chunk whose snapshot went to a
        # fresh checkpoint chunk, i.e. always dirty next time).  Drives
        # the dirty-chunk diff of incremental/async checkpoints.
        self._last_epoch_chunks: dict[tuple[str, str], list[int | None]] = {}
        # Async chain state: per backing path, a write hook recording the
        # chunks touched since the last async epoch's initiation; per
        # (tag, section label), the chunk ids of the last async epoch
        # *file* (the link targets for the next epoch's clean chunks).
        self._async_trackers: dict[str, MutationTracker] = {}
        self._epoch_file_chunks: dict[tuple[str, str], list[int]] = {}
        # Introspection for the last restore: which epoch it resolved to
        # and whether that resolution was a truncated-epoch fallback.
        self.last_restore_epoch: int | None = None
        self.last_restore_fallback: bool = False

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _backing_path(
        self, shared_key: str | None, owner: str, persistent_name: str | None
    ) -> str:
        if persistent_name is not None:
            return f"{MOUNT_POINT}/persistent/{persistent_name}"
        if shared_key is not None:
            return f"{MOUNT_POINT}/nvmalloc/shared/{shared_key}"
        return f"{MOUNT_POINT}/nvmalloc/{self.node.name}/{owner}/{next(self._seq)}"

    def ssdmalloc(
        self,
        nbytes: int,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        private: bool = False,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMVariable]:
        """Dispatch :meth:`_ssdmalloc_impl`, spanned when tracing is on."""
        gen = self._ssdmalloc_impl(
            nbytes,
            owner=owner,
            shared_key=shared_key,
            private=private,
            persistent_name=persistent_name,
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap("nvmalloc", "ssdmalloc", gen, bytes=nbytes)

    def _ssdmalloc_impl(
        self,
        nbytes: int,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        private: bool = False,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMVariable]:
        """Allocate ``nbytes`` from the aggregate NVM store.

        Creates (or, for an existing ``shared_key``, opens) an internal
        file on the store and memory-maps it, returning the mapped
        variable; the client never sees the file name.  ``shared_key``
        lets multiple processes map one backing file — the read-only
        matrix-B optimization of Fig. 4.  ``private=True`` gives
        ``MAP_PRIVATE`` (copy-on-write, never checkpointable) semantics.

        ``persistent_name`` gives the variable a *lifetime beyond the
        run* (paper §III-C's workflow/in-situ sharing idea): the backing
        file survives ``ssdfree`` and can be re-opened — from any node —
        with :meth:`open_persistent`, or dropped with
        :meth:`unlink_persistent`.
        """
        if nbytes <= 0:
            raise AllocationError(f"ssdmalloc of {nbytes} bytes")
        if persistent_name is not None and shared_key is not None:
            raise AllocationError(
                "persistent_name and shared_key are mutually exclusive"
            )
        path = self._backing_path(shared_key, owner, persistent_name)
        existing = self.manager.exists(path)
        if existing:
            if shared_key is None and persistent_name is None:
                raise AllocationError(f"internal name collision on {path!r}")
            if persistent_name is not None:
                raise AllocationError(
                    f"persistent variable {persistent_name!r} already exists; "
                    "use open_persistent() to map it"
                )
            if self.manager.lookup(path).size < nbytes:
                raise AllocationError(
                    f"shared allocation {shared_key!r} exists with smaller size"
                )
            fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
        else:
            try:
                fd = yield from self.mount.open(
                    path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=nbytes
                )
            except FileExistsInStoreError:
                # Another process on this node raced us to create the
                # shared mapping between our existence check and the
                # create RPC; fall back to opening it.
                if shared_key is None:
                    raise
                fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
            else:
                # The paper intimates the buffer size to the store with
                # posix_fallocate(); creation reserved it, this validates.
                yield from self.mount.fallocate(fd, nbytes)
        region = MmapRegion(
            self.pagecache,
            path,
            nbytes,
            prot=Protection.PROT_READ | Protection.PROT_WRITE,
            shared=not private,
        )
        self._mapping_refs[path] = self._mapping_refs.get(path, 0) + 1
        if persistent_name is not None:
            self._persistent_paths.add(path)
        yield from self.mount.close(fd)
        self.metrics.add("nvmalloc.ssdmalloc.bytes", nbytes)
        self.metrics.add("nvmalloc.ssdmalloc.calls")
        return NVMVariable(region, owner=owner, backing_path=path)

    def open_persistent(
        self, persistent_name: str, *, owner: str = "app"
    ) -> Generator[Event, object, NVMVariable]:
        """Map an existing persistent variable (possibly created by a
        previous job or on another node) into this process."""
        path = f"{MOUNT_POINT}/persistent/{persistent_name}"
        if not self.manager.exists(path):
            raise AllocationError(
                f"no persistent variable {persistent_name!r} on the store"
            )
        fd = yield from self.mount.open(path, OpenFlags.O_RDWR)
        nbytes = self.mount.stat_size(path)
        region = MmapRegion(
            self.pagecache,
            path,
            nbytes,
            prot=Protection.PROT_READ | Protection.PROT_WRITE,
            shared=True,
        )
        self._mapping_refs[path] = self._mapping_refs.get(path, 0) + 1
        self._persistent_paths.add(path)
        yield from self.mount.close(fd)
        return NVMVariable(region, owner=owner, backing_path=path)

    def unlink_persistent(self, persistent_name: str) -> Generator[Event, object, None]:
        """Remove a persistent variable's backing file from the store.

        Fails while mappings created through this context are live.
        """
        path = f"{MOUNT_POINT}/persistent/{persistent_name}"
        if self._mapping_refs.get(path):
            raise NVMallocError(
                f"persistent variable {persistent_name!r} still mapped"
            )
        self._persistent_paths.discard(path)
        self.mount.cache.invalidate_path(path)
        yield from self.mount.unlink(path)

    def ssdfree(self, variable: NVMVariable) -> Generator[Event, object, None]:
        """Release an allocation: unmap, and unlink the backing file when
        the last mapping on this node drops.

        If the variable's chunks are linked into a checkpoint, the store's
        refcounts keep the checkpoint intact; only the variable's own
        references are released (§III-E persistence rules).
        """
        path = variable.backing_path
        if path not in self._mapping_refs:
            raise NVMallocError(f"ssdfree of unknown variable over {path!r}")
        yield from variable.region.munmap()
        tracker = self._async_trackers.pop(path, None)
        if tracker is not None:
            self.pagecache.unregister_write_hook(path, tracker)
        yield from self.mount.cache.flush_path(path)
        self._mapping_refs[path] -= 1
        if self._mapping_refs[path] == 0:
            del self._mapping_refs[path]
            if path in self._persistent_paths:
                # Persistent variables outlive their mappings: keep the
                # backing file, just drop our cached chunks.
                self.mount.cache.invalidate_path(path)
            else:
                self.mount.cache.invalidate_path(path)
                yield from self.mount.unlink(path)
        self.metrics.add("nvmalloc.ssdfree.calls")

    # ------------------------------------------------------------------
    # Typed-array conveniences
    # ------------------------------------------------------------------
    def ssdmalloc_array(
        self,
        shape: tuple[int, ...] | Sequence[int],
        dtype: object = np.float64,
        *,
        owner: str = "app",
        shared_key: str | None = None,
        persistent_name: str | None = None,
    ) -> Generator[Event, object, NVMArray]:
        """Allocate a typed array on the NVM store."""
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        variable = yield from self.ssdmalloc(
            nbytes, owner=owner, shared_key=shared_key,
            persistent_name=persistent_name,
        )
        return NVMArray(variable, shape, np.dtype(dtype))

    def dram_array(
        self, shape: tuple[int, ...] | Sequence[int], dtype: object = np.float64
    ) -> DRAMArray:
        """Allocate a typed array in node-local DRAM (budget-checked)."""
        shape = tuple(int(s) for s in shape)
        return DRAMArray(self.node.dram, shape, np.dtype(dtype))

    # ------------------------------------------------------------------
    # Checkpointing (paper §III-E)
    # ------------------------------------------------------------------
    def _checkpoint_path(self, tag: str, timestep: int) -> str:
        return f"{MOUNT_POINT}/checkpoints/{tag}.{timestep}"

    def _checkpoint_preflight(
        self,
        tag: str,
        timestep: int,
        variables: Sequence[tuple[str, NVMVariable]],
        layout: Sequence[str] | None,
    ) -> tuple[dict[str, NVMVariable], list[str]]:
        """Shared validation for sync and async checkpoints.

        Returns ``(var_map, section_order)``; raises
        :class:`CheckpointError` on duplicate keys, bad layouts, or
        unrecoverable data loss (fail fast: a variable whose chunk has no
        surviving replica can never be flushed or linked — degraded but
        readable variables proceed via the client's failover path).
        """
        key = (tag, timestep)
        if key in self._checkpoints:
            raise CheckpointError(f"checkpoint {tag}@{timestep} already exists")
        var_map: dict[str, NVMVariable] = {}
        for label, variable in variables:
            if label == "__dram__" or label in var_map:
                raise CheckpointError(f"duplicate/reserved section label {label!r}")
            var_map[label] = variable
        section_order = (
            list(layout) if layout is not None
            else ["__dram__", *var_map.keys()]
        )
        if sorted(section_order) != sorted(["__dram__", *var_map.keys()]):
            raise CheckpointError(
                f"layout {section_order!r} must be a permutation of "
                f"['__dram__', {', '.join(map(repr, var_map))}]"
            )
        lost: set[int] = set()
        for variable in var_map.values():
            lost.update(self.manager.lost_chunks(variable.backing_path))
        if lost:
            raise CheckpointError(
                f"checkpoint {tag}@{timestep}: chunks {sorted(lost)} have "
                "no surviving replica",
                lost_chunks=tuple(
                    LostChunk(
                        chunk_id,
                        epoch=timestep,
                        replicas=self.manager.lost_replicas(chunk_id),
                    )
                    for chunk_id in sorted(lost)
                ),
            )
        return var_map, section_order

    def _dirty_variable_chunks(
        self, tag: str, label: str, backing: str, live_ids: list[int]
    ) -> set[int]:
        """Chunk indices of a variable that changed since the last epoch.

        A chunk is dirty when (a) no prior epoch froze it (first epoch,
        or its last snapshot went to a fresh checkpoint chunk), (b) the
        live chunk id diverged from the frozen one (a flush already
        copy-on-wrote it), or (c) either client cache holds unflushed
        dirty bytes for it.  Pure metadata — no simulated events.
        """
        num = len(live_ids)
        prev = self._last_epoch_chunks.get((tag, label))
        if prev is None:
            return set(range(num))
        dirty = {
            i
            for i in range(num)
            if i >= len(prev) or prev[i] is None or prev[i] != live_ids[i]
        }
        dirty |= self.pagecache.dirty_chunk_indices(backing, self.chunk_size)
        dirty |= self.mount.cache.dirty_chunk_indices(backing)
        return {i for i in dirty if i < num}

    def _lost_chunk_records(
        self, path: str, epoch: int | None
    ) -> tuple[LostChunk, ...]:
        """Detailed loss records for every lost chunk of ``path``."""
        return tuple(
            LostChunk(
                chunk_id,
                epoch=epoch,
                replicas=self.manager.lost_replicas(chunk_id),
            )
            for chunk_id in self.manager.lost_chunks(path)
        )

    @staticmethod
    def _section_tuples(
        sections: Sequence[CheckpointSection],
    ) -> tuple[tuple[str, int, int, bool], ...]:
        """Serialize sections for the manager-side epoch commit record."""
        return tuple(
            (s.name, s.offset, s.length, s.linked) for s in sections
        )

    def ssdcheckpoint(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
        mode: str = "incremental",
    ) -> Generator[Event, object, CheckpointRecord]:
        """Dispatch :meth:`_ssdcheckpoint_impl`, spanned when tracing is on."""
        gen = self._ssdcheckpoint_impl(
            tag, timestep, dram_state, variables, layout=layout, mode=mode
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "ssdcheckpoint", gen, tag=tag, timestep=timestep
        )

    def _ssdcheckpoint_impl(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
        mode: str = "incremental",
    ) -> Generator[Event, object, CheckpointRecord]:
        """Checkpoint DRAM state and NVM variables into one restart file.

        The DRAM image is physically written to the store; in the default
        ``"incremental"`` mode each variable is flushed (so only its
        dirty bytes move; its chunks then reflect current contents) and
        its chunks are *linked* into the checkpoint file — zero copy,
        zero extra NVM wear.  Subsequent writes to the variables trigger
        copy-on-write in the store, so the checkpoint stays frozen.
        ``"full"`` mode instead physically copies every variable byte
        into the file (the classic full checkpoint the incremental chain
        is measured against).

        Each checkpoint registers an *epoch* with the store manager:
        begun before data moves, committed after the final fsync.  An
        epoch truncated by a crash never commits, and restores fall back
        along its parent link (see :meth:`restore`).  Registration rides
        the control RPCs the checkpoint already pays — with the default
        mode the event stream is unchanged.

        ``layout`` optionally orders the sections within the restart file
        (the §III-E "user may wish to specify the layout" hook): a
        permutation of ``["__dram__", <variable labels...>]``.  Default:
        DRAM image first, then variables in argument order.
        """
        if mode not in CHECKPOINT_MODES:
            raise CheckpointError(
                f"unknown checkpoint mode {mode!r}; expected one of "
                f"{CHECKPOINT_MODES} (async via ssdcheckpoint_async)"
            )
        var_map, section_order = self._checkpoint_preflight(
            tag, timestep, variables, layout
        )
        key = (tag, timestep)
        path = self._checkpoint_path(tag, timestep)
        dram_len = len(dram_state)
        fd = yield from self.mount.open(
            path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=0
        )
        # Metadata-only; piggybacks on the create RPC the open just paid.
        epoch = self.manager.begin_epoch(tag, timestep, path, mode=mode)
        sections: list[CheckpointSection] = []
        record = CheckpointRecord(
            tag=tag, timestep=timestep, path=path, sections=sections,
            mode=mode, parent=epoch.parent,
        )
        for name in section_order:
            if name == "__dram__":
                yield from self.manager.rpc(self.node.name)
                offset = self.manager.extend_file(
                    path, dram_len, client=self.node.name
                )
                if dram_len:
                    yield from self.mount.pwrite(fd, offset, dram_state)
                sections.append(
                    CheckpointSection(
                        "__dram__", offset=offset, length=dram_len, linked=False
                    )
                )
                record.bytes_written += dram_len
            else:
                variable = var_map[name]
                if not variable.region.shared:
                    raise CheckpointError(
                        f"variable {name!r} is MAP_PRIVATE; checkpointing "
                        "requires MAP_SHARED (paper §III-C)"
                    )
                backing = variable.backing_path
                live_ids = list(self.manager.lookup(backing).chunk_ids)
                dirty = self._dirty_variable_chunks(tag, name, backing, live_ids)
                record.dirty_chunks += len(dirty)
                record.total_chunks += len(live_ids)
                if mode == "full":
                    # Physical copy: read the mapped view and write it
                    # into freshly reserved checkpoint chunks.  No flush
                    # needed — the file holds its own copy of the data.
                    yield from self.manager.rpc(self.node.name)
                    offset = self.manager.extend_file(
                        path, variable.nbytes, client=self.node.name
                    )
                    step = self.chunk_size
                    for rel in range(0, variable.nbytes, step):
                        take = min(step, variable.nbytes - rel)
                        data = yield from self.pagecache.read(backing, rel, take)
                        yield from self.mount.pwrite(fd, offset + rel, data)
                    sections.append(
                        CheckpointSection(
                            name, offset=offset, length=variable.nbytes,
                            linked=False,
                        )
                    )
                    record.bytes_written += variable.nbytes
                    # A full epoch shares nothing: the next incremental
                    # diff has no frozen ids to compare against.
                    self._last_epoch_chunks.pop((tag, name), None)
                else:
                    # Flush app-side caches so the store holds current
                    # bytes (dirty pages only — this *is* the paper's
                    # incremental write path), then link by reference.
                    yield from variable.region.msync()
                    yield from self.mount.cache.flush_path(backing)
                    meta_before = self.manager.lookup(path)
                    offset = meta_before.num_chunks * self.chunk_size
                    self.manager.link_chunks(path, backing)
                    sections.append(
                        CheckpointSection(
                            name, offset=offset, length=variable.nbytes,
                            linked=True,
                        )
                    )
                    record.bytes_linked += variable.nbytes
                    # Freeze the post-flush chunk ids: these are exactly
                    # the ids the epoch linked.
                    self._last_epoch_chunks[(tag, name)] = list(
                        self.manager.lookup(backing).chunk_ids
                    )
        yield from self.mount.fsync(fd)
        yield from self.mount.close(fd)
        # The commit record rides the close's control round trip.
        self.manager.commit_epoch(
            tag, timestep, sections=self._section_tuples(sections)
        )
        self._checkpoints[key] = record
        self.metrics.add("nvmalloc.checkpoint.bytes_written", record.bytes_written)
        self.metrics.add("nvmalloc.checkpoint.bytes_linked", record.bytes_linked)
        self.metrics.add("nvmalloc.checkpoint.calls")
        return record

    def ssdcheckpoint_async(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
        staging_bytes: int | None = None,
    ) -> Generator[Event, object, AsyncCheckpoint]:
        """Dispatch :meth:`_ssdcheckpoint_async_impl`, spanned when tracing is on."""
        gen = self._ssdcheckpoint_async_impl(
            tag, timestep, dram_state, variables,
            layout=layout, staging_bytes=staging_bytes,
        )
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "ssdcheckpoint_async", gen, tag=tag, timestep=timestep
        )

    def _ssdcheckpoint_async_impl(
        self,
        tag: str,
        timestep: int,
        dram_state: bytes,
        variables: Sequence[tuple[str, NVMVariable]] = (),
        *,
        layout: Sequence[str] | None = None,
        staging_bytes: int | None = None,
    ) -> Generator[Event, object, AsyncCheckpoint]:
        """Initiate an asynchronous CoW-snapshot checkpoint.

        The short foreground phase freezes the *layout*: clean chunks of
        each variable are linked by reference (store-side refcounts then
        copy-on-write any later flush, exactly as for a synchronous
        checkpoint), dirty chunks get fresh checkpoint chunks, the DRAM
        image is staged, and a :class:`SnapshotGuard` is registered on
        each variable's write path.  Returns an :class:`AsyncCheckpoint`
        handle while a background drainer captures and streams the dirty
        chunks' snapshot bytes; ``yield from handle.wait()`` joins it.

        App writes racing the drain are consistent by construction:
        writes to a not-yet-drained chunk trigger a copy-on-write capture
        first (bounded by ``staging_bytes`` of staging memory — default
        four chunks — with backpressure).  The epoch commits only after
        the drain's final fsync; a crash before that leaves it truncated
        and restores fall back to its parent epoch.
        """
        var_map, section_order = self._checkpoint_preflight(
            tag, timestep, variables, layout
        )
        if staging_bytes is None:
            staging_bytes = 4 * self.chunk_size
        path = self._checkpoint_path(tag, timestep)
        dram_len = len(dram_state)
        fd = yield from self.mount.open(
            path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=0
        )
        epoch = self.manager.begin_epoch(tag, timestep, path, mode="async")
        sections: list[CheckpointSection] = []
        record = CheckpointRecord(
            tag=tag, timestep=timestep, path=path, sections=sections,
            mode="async", parent=epoch.parent,
        )
        guards: dict[str, SnapshotGuard] = {}
        # Per variable: (label, backing path, {chunk index -> file offset}).
        drain_plan: list[tuple[str, str, dict[int, int]]] = []
        dram_offset = 0
        for name in section_order:
            if name == "__dram__":
                yield from self.manager.rpc(self.node.name)
                dram_offset = self.manager.extend_file(
                    path, dram_len, client=self.node.name
                )
                if dram_len:
                    # Staging the DRAM image is a memory copy; the store
                    # write happens in the drain.
                    yield from self.node.dram.access(AccessKind.READ, dram_len)
                sections.append(
                    CheckpointSection(
                        "__dram__", offset=dram_offset, length=dram_len,
                        linked=False,
                    )
                )
            else:
                variable = var_map[name]
                if not variable.region.shared:
                    raise CheckpointError(
                        f"variable {name!r} is MAP_PRIVATE; checkpointing "
                        "requires MAP_SHARED (paper §III-C)"
                    )
                backing = variable.backing_path
                live_ids = list(self.manager.lookup(backing).chunk_ids)
                # Chain diff: a chunk is dirty iff it was written since
                # the previous async epoch's initiation (the mutation
                # tracker watched the write path the whole time); every
                # other chunk's frozen bytes already sit in the previous
                # epoch's file, so it links there — the incremental CoW
                # chain.  Without a prior epoch to diff against (first
                # async epoch of the chain, variable resized, or the
                # prior epoch's chunks already GC'd) every chunk is dirty.
                tracker = self._async_trackers.get(backing)
                prev_file = self._epoch_file_chunks.get((tag, name))
                touched = tracker.reset() if tracker is not None else None
                if (
                    touched is not None
                    and prev_file is not None
                    and len(prev_file) == len(live_ids)
                    and all(self.manager.chunk_known(c) for c in prev_file)
                ):
                    dirty = {i for i in touched if 0 <= i < len(live_ids)}
                else:
                    dirty = set(range(len(live_ids)))
                if tracker is None:
                    tracker = MutationTracker(self.chunk_size)
                    self.pagecache.register_write_hook(backing, tracker)
                    self._async_trackers[backing] = tracker
                record.dirty_chunks += len(dirty)
                record.total_chunks += len(live_ids)
                # One metadata round trip covers the per-chunk layout ops.
                yield from self.manager.rpc(self.node.name)
                section_offset: int | None = None
                chunk_lengths: dict[int, int] = {}
                file_offsets: dict[int, int] = {}
                frozen: list[int | None] = []
                for i in range(len(live_ids)):
                    length_i = min(
                        self.chunk_size, variable.nbytes - i * self.chunk_size
                    )
                    if i in dirty:
                        off = self.manager.extend_file(
                            path, length_i, client=self.node.name
                        )
                        chunk_lengths[i] = length_i
                        file_offsets[i] = off
                        frozen.append(None)
                    else:
                        assert prev_file is not None
                        off = self.manager.link_chunk(
                            path, prev_file[i], length_i
                        )
                        record.bytes_linked += length_i
                        frozen.append(prev_file[i])
                    if section_offset is None:
                        section_offset = off
                # The new epoch file's chunks for this section are the
                # next epoch's link targets.
                meta = self.manager.lookup(path)
                first_chunk = (
                    section_offset // self.chunk_size
                    if section_offset is not None
                    else meta.num_chunks
                )
                self._epoch_file_chunks[(tag, name)] = list(
                    meta.chunk_ids[first_chunk : first_chunk + len(live_ids)]
                )
                sections.append(
                    CheckpointSection(
                        name,
                        offset=section_offset if section_offset is not None else 0,
                        length=variable.nbytes,
                        linked=len(dirty) < len(live_ids),
                    )
                )
                self._last_epoch_chunks[(tag, name)] = frozen
                guard = SnapshotGuard(
                    self.engine,
                    self.pagecache,
                    backing,
                    chunk_size=self.chunk_size,
                    chunk_lengths=chunk_lengths,
                    staging_limit=staging_bytes,
                )
                if chunk_lengths:
                    self.pagecache.register_write_hook(backing, guard)
                guards[backing] = guard
                drain_plan.append((name, backing, file_offsets))
        handle = AsyncCheckpoint(
            self.engine, tag, timestep, record, guards
        )
        handle.process = self.engine.process(
            self._drain_async_impl(
                handle, fd, dram_offset, dram_state, drain_plan
            )
        )
        self.metrics.add("nvmalloc.checkpoint.async_calls")
        return handle

    def _drain_async_impl(
        self,
        handle: AsyncCheckpoint,
        fd: int,
        dram_offset: int,
        dram_state: bytes,
        drain_plan: list[tuple[str, str, dict[int, int]]],
    ) -> Generator[Event, object, None]:
        """Background drainer of one async checkpoint.

        Writes the staged DRAM image, then every pending dirty chunk
        (popping staged CoW captures, capturing the rest on demand),
        fsyncs, closes, and commits the epoch.  On failure the epoch
        stays uncommitted (truncated): restores fall back to its parent.
        """
        record = handle.record
        try:
            if dram_state:
                yield from self.mount.pwrite(fd, dram_offset, dram_state)
                record.bytes_written += len(dram_state)
            for name, backing, file_offsets in drain_plan:
                guard = handle.guards[backing]
                for index in sorted(file_offsets):
                    data = yield from guard.take(index)
                    yield from self.mount.pwrite(
                        fd, file_offsets[index], data
                    )
                    record.bytes_written += len(data)
                self.pagecache.unregister_write_hook(backing, guard)
            yield from self.mount.fsync(fd)
            yield from self.mount.close(fd)
            self.manager.commit_epoch(
                handle.tag, handle.timestep,
                sections=self._section_tuples(record.sections),
            )
            self._checkpoints[(handle.tag, handle.timestep)] = record
            self.metrics.add(
                "nvmalloc.checkpoint.bytes_written", record.bytes_written
            )
            self.metrics.add(
                "nvmalloc.checkpoint.bytes_linked", record.bytes_linked
            )
            if handle.cow_captures:
                self.metrics.add(
                    "nvmalloc.checkpoint.cow_captures", handle.cow_captures
                )
            handle._finish(None)
        except (NVMallocError, StoreError) as error:
            # Truncated epoch: release the guards (writes stop paying
            # capture; pending snapshots are abandoned) and drop our
            # cached dirty data for the dead file so later evictions
            # don't push bytes to a checkpoint that will never commit.
            for _name, backing, _offsets in drain_plan:
                self.pagecache.unregister_write_hook(
                    backing, handle.guards[backing]
                )
                handle.guards[backing].cancel()
            self.mount.cache.invalidate_path(record.path)
            handle._finish(error)

    def checkpoint_record(self, tag: str, timestep: int) -> CheckpointRecord:
        """The record of checkpoint ``tag``@``timestep`` (raises when absent)."""
        try:
            return self._checkpoints[(tag, timestep)]
        except KeyError:
            raise CheckpointError(f"no checkpoint {tag}@{timestep}") from None

    def restore(
        self, tag: str, timestep: int | None = None
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Dispatch :meth:`_restore_impl`, spanned when tracing is on."""
        gen = self._restore_impl(tag, timestep)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "restore", gen, tag=tag, timestep=timestep
        )

    def _restore_impl(
        self, tag: str, timestep: int | None = None
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Read a checkpoint back: ``(dram_state, {label: variable_bytes})``.

        Crash-restart recovery: the target epoch is resolved against the
        *manager-side* commit records (a restarted context with cold
        caches needs no client-side state), so ``timestep=None`` restores
        the newest complete epoch, and a timestep whose epoch a crash
        truncated falls back along parent links to the newest complete
        ancestor (``last_restore_epoch`` / ``last_restore_fallback``
        record what happened).  The epoch is pinned for the duration, so
        chain GC can never free chunks under an in-flight restore.

        Reads go through the normal FUSE path (a restart would fault the
        data in the same way) and ride the client's retry/failover loop
        over degraded replicas; only when a required chunk is lost at
        every replica does the restore fail, with a typed
        :class:`~repro.errors.RestoreError` detailing the loss.
        """
        try:
            epoch = self.manager.resolve_restore_epoch(tag, timestep)
        except FileNotFoundInStoreError:
            raise CheckpointError(f"no checkpoint {tag}@{timestep}") from None
        if epoch is None:
            raise RestoreError(
                f"checkpoint {tag!r} has no complete epoch to restore "
                f"(requested {timestep})",
                epoch=timestep,
            )
        record = self.manager.epoch_record(tag, epoch)
        dram_sec = None
        for entry in record.sections:
            if entry[0] == "__dram__":
                dram_sec = entry
        if dram_sec is None:
            raise CheckpointError(
                f"checkpoint {tag}@{epoch} has no section '__dram__'"
            )
        self.manager.pin_epoch(tag, epoch)
        try:
            try:
                fd = yield from self.mount.open(record.path, OpenFlags.O_RDONLY)
                dram_state = yield from self.mount.pread(
                    fd, dram_sec[1], dram_sec[2]
                )
                variables: dict[str, bytes] = {}
                for name, offset, length, _linked in record.sections:
                    if name == "__dram__":
                        continue
                    variables[name] = yield from self.mount.pread(
                        fd, offset, length
                    )
                yield from self.mount.close(fd)
            except ChunkUnavailableError as error:
                raise RestoreError(
                    f"restore of {tag}@{epoch} failed: required chunks are "
                    "lost at every replica",
                    lost_chunks=self._lost_chunk_records(record.path, epoch),
                    epoch=epoch,
                ) from error
        finally:
            self.manager.unpin_epoch(tag, epoch)
        self.last_restore_epoch = epoch
        self.last_restore_fallback = timestep is not None and epoch != timestep
        return dram_state, variables

    def drain_checkpoint_to_pfs(
        self,
        tag: str,
        timestep: int,
        pfs,
        *,
        dest: str | None = None,
        block_bytes: int = 1024 * 1024,
    ) -> Generator[Event, object, str]:
        """Copy a checkpoint from the aggregate store to the center PFS.

        The paper's deployment story (§III-E): checkpoint to the fast NVM
        store, then *drain to the PFS in the background* for durability.
        Spawn this generator as its own simulation process to overlap the
        drain with subsequent compute:

            engine.process(lib.drain_checkpoint_to_pfs("app", 3, pfs))

        Returns the PFS file name.
        """
        record = self.checkpoint_record(tag, timestep)
        if dest is None:
            dest = f"scratch/checkpoints/{tag}.{timestep}"
        total = self.manager.lookup(record.path).size
        pfs.create(dest, total)
        fd = yield from self.mount.open(record.path, OpenFlags.O_RDONLY)
        for offset in range(0, total, block_bytes):
            length = min(block_bytes, total - offset)
            data = yield from self.mount.pread(fd, offset, length)
            yield from pfs.write(self.node.name, dest, offset, data)
        yield from self.mount.close(fd)
        self.metrics.add("nvmalloc.checkpoint.drained_bytes", total)
        return dest

    def restore_from_pfs(
        self,
        tag: str,
        timestep: int,
        pfs,
        *,
        source: str | None = None,
        block_bytes: int = 1024 * 1024,
    ) -> Generator[Event, object, tuple[bytes, dict[str, bytes]]]:
        """Restore a checkpoint from its drained PFS copy.

        The disaster-recovery path of the §III-E story: the NVM store's
        copy may be gone (node failures, space reclaimed), but the copy
        `drain_checkpoint_to_pfs` pushed to the center-wide scratch
        survives.  Returns ``(dram_state, {label: variable_bytes})`` like
        :meth:`restore`, reading through the PFS instead of the store.
        """
        record = self.checkpoint_record(tag, timestep)
        if source is None:
            source = f"scratch/checkpoints/{tag}.{timestep}"
        if not pfs.exists(source):
            raise CheckpointError(
                f"no drained copy of {tag}@{timestep} at {source!r}"
            )

        def read_section(offset: int, length: int) -> Generator[Event, object, bytes]:
            parts: list[bytes] = []
            for block_off in range(0, length, block_bytes):
                take = min(block_bytes, length - block_off)
                parts.append(
                    (
                        yield from pfs.read(
                            self.node.name, source, offset + block_off, take
                        )
                    )
                )
            return b"".join(parts)

        dram_sec = record.dram_section
        dram_state = yield from read_section(dram_sec.offset, dram_sec.length)
        variables: dict[str, bytes] = {}
        for sec in record.variable_sections:
            variables[sec.name] = yield from read_section(sec.offset, sec.length)
        return dram_state, variables

    def delete_checkpoint(self, tag: str, timestep: int) -> Generator[Event, object, None]:
        """Remove a checkpoint file (linked chunks survive if still used)."""
        record = self._checkpoints.pop((tag, timestep), None)
        if record is None:
            raise CheckpointError(f"no checkpoint {tag}@{timestep}")
        # Metadata only: later epochs chaining through this one are
        # re-parented past it (rides the unlink's control traffic).
        self.manager.drop_epoch(tag, timestep)
        yield from self.mount.unlink(record.path)

    def gc_checkpoints(
        self, tag: str, *, keep_last: int = 1
    ) -> Generator[Event, object, int]:
        """Dispatch :meth:`_gc_checkpoints_impl`, spanned when tracing is on."""
        gen = self._gc_checkpoints_impl(tag, keep_last=keep_last)
        tracer = self.node.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "nvmalloc", "gc_checkpoints", gen, tag=tag, keep_last=keep_last
        )

    def _gc_checkpoints_impl(
        self, tag: str, *, keep_last: int = 1
    ) -> Generator[Event, object, int]:
        """Garbage-collect superseded epochs of ``tag``'s chain.

        Retires every committed epoch except the newest ``keep_last``,
        skipping pinned epochs (an in-flight restore holds them) and the
        fallback ancestor of any in-flight async epoch.  Chunks shared
        with newer epochs or the live variables merely drop a refcount;
        chunks referenced by nothing else are physically freed (counted
        in ``store.manager.gc_reclaimed_bytes``, deferred behind any
        in-flight re-replication fill so GC never races repair).
        Returns the physical bytes reclaimed.
        """
        reclaimed = 0
        retired = 0
        for epoch in self.manager.gc_candidates(tag, keep_last=keep_last):
            record = self.manager.epoch_record(tag, epoch)
            # One control round trip per retired epoch.
            yield from self.manager.rpc(self.node.name)
            # Drop our cached chunks of the retired file before the
            # manager frees them (mirrors unlink's invalidation).
            self.mount.cache.invalidate_path(record.path)
            reclaimed += self.manager.retire_epoch(tag, epoch)
            self._checkpoints.pop((tag, epoch), None)
            retired += 1
        if retired:
            self.metrics.add("nvmalloc.checkpoint.gc_epochs", retired)
            self.metrics.add("nvmalloc.checkpoint.gc_bytes", reclaimed)
        return reclaimed

    def __repr__(self) -> str:
        return f"<NVMalloc on {self.node.name}>"
