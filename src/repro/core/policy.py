"""Placement policy: which variables go to DRAM, which to the NVM store.

The paper argues applications should place write-once-read-many or
infrequently accessed variables on NVM and keep hot, frequently mutated
ones in DRAM (§III-B).  :class:`PlacementPolicy` encodes that heuristic
plus the hard constraint that the DRAM budget cannot be exceeded, so
workloads can ask "where should this array live?" instead of hand-coding
the decision per configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PlacementDecision(enum.Enum):
    """Where a variable should be allocated."""

    DRAM = "dram"
    NVM = "nvm"


@dataclass
class VariableProfile:
    """Access characteristics of a variable, as hinted by the application."""

    name: str
    nbytes: int
    # Estimated accesses per byte over the variable's lifetime.
    reads_per_byte: float = 1.0
    writes_per_byte: float = 1.0
    sequential: bool = True

    @property
    def write_once_read_many(self) -> bool:
        """True for the WORM profile the paper recommends spilling to NVM."""
        return self.writes_per_byte <= 1.0 and self.reads_per_byte >= 2.0


class PlacementPolicy:
    """Greedy placement under a DRAM budget.

    Variables are ranked by "heat" (access intensity, with writes weighted
    more because NVM writes are slower and wear the device); the hottest
    variables claim DRAM until the budget runs out, the rest spill to the
    NVM store.  Write-once-read-many sequential variables are preferred
    spill candidates — they are exactly what NVMalloc's chunk cache
    handles well.
    """

    def __init__(self, dram_budget: int, *, write_weight: float = 3.0) -> None:
        if dram_budget < 0:
            raise ValueError(f"negative DRAM budget {dram_budget}")
        self.dram_budget = dram_budget
        self.write_weight = write_weight

    def heat(self, profile: VariableProfile) -> float:
        """Access intensity; higher means more DRAM-worthy."""
        score = profile.reads_per_byte + self.write_weight * profile.writes_per_byte
        if profile.write_once_read_many and profile.sequential:
            # NVMalloc's sweet spot: cheap to serve from the chunk cache.
            score *= 0.5
        return score

    def place(
        self, profiles: list[VariableProfile]
    ) -> dict[str, PlacementDecision]:
        """Assign every variable a placement under the DRAM budget."""
        decisions: dict[str, PlacementDecision] = {}
        remaining = self.dram_budget
        ranked = sorted(profiles, key=self.heat, reverse=True)
        for profile in ranked:
            if profile.nbytes <= remaining:
                decisions[profile.name] = PlacementDecision.DRAM
                remaining -= profile.nbytes
            else:
                decisions[profile.name] = PlacementDecision.NVM
        return decisions

    def fits_in_dram(self, profiles: list[VariableProfile]) -> bool:
        """Would everything fit in DRAM without spilling?"""
        return sum(p.nbytes for p in profiles) <= self.dram_budget
