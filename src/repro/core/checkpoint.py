"""Checkpoint records: the layout of ``chckptfile_t`` (paper §III-E).

A checkpoint file holds the DRAM state as freshly written chunks followed
by the *linked* chunks of each NVM-allocated variable — no variable data
is copied at checkpoint time.  Each section starts on a chunk boundary
(linking operates on whole chunks), so offsets are reconstructible from
section lengths alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CheckpointSection:
    """One section of a checkpoint file."""

    name: str  # "__dram__" or the variable's label
    offset: int  # chunk-aligned byte offset within the checkpoint file
    length: int  # meaningful bytes (may be < the chunk-aligned span)
    linked: bool  # True when chunks are shared with the live variable


@dataclass
class CheckpointRecord:
    """Everything needed to restart from one checkpoint."""

    tag: str
    timestep: int
    path: str  # checkpoint file on the aggregate store
    sections: list[CheckpointSection] = field(default_factory=list)
    # Accounting for the incremental-checkpoint claim: bytes physically
    # written at checkpoint time vs bytes merely linked.
    bytes_written: int = 0
    bytes_linked: int = 0
    # Epoch-chain accounting: how this epoch was taken ("incremental",
    # "full" or "async"), the committed epoch it chains to, and how many
    # of the variables' chunks were dirty since that parent (the rest
    # were linked without any data movement).
    mode: str = "incremental"
    parent: int | None = None
    dirty_chunks: int = 0
    total_chunks: int = 0

    def section(self, name: str) -> CheckpointSection:
        """The section labelled ``name`` (raises CheckpointError when absent)."""
        for sec in self.sections:
            if sec.name == name:
                return sec
        from repro.errors import CheckpointError

        raise CheckpointError(
            f"checkpoint {self.tag}@{self.timestep} has no section {name!r}"
        )

    @property
    def dram_section(self) -> CheckpointSection:
        """The DRAM-image section."""
        return self.section("__dram__")

    @property
    def variable_sections(self) -> list[CheckpointSection]:
        """All linked variable sections, in layout order."""
        return [s for s in self.sections if s.name != "__dram__"]
