"""NVMalloc: the paper's primary contribution.

A per-node library context through which application processes explicitly
allocate (:meth:`~repro.core.nvmalloc.NVMalloc.ssdmalloc`), free
(:meth:`~repro.core.nvmalloc.NVMalloc.ssdfree`) and checkpoint
(:meth:`~repro.core.nvmalloc.NVMalloc.ssdcheckpoint`) memory regions backed
by the distributed aggregate NVM store, accessed byte-addressably through
the memory-mapped I/O interface.

Typed array views (:class:`~repro.core.variable.NVMArray` /
:class:`~repro.core.variable.DRAMArray`) give workloads a uniform numpy-
style interface regardless of where a variable lives — the explicit
placement control the paper argues for.
"""

from repro.core.async_ckpt import AsyncCheckpoint, MutationTracker, SnapshotGuard
from repro.core.nvmalloc import NVMalloc
from repro.core.variable import Array, DRAMArray, NVMArray, NVMVariable
from repro.core.checkpoint import CheckpointRecord, CheckpointSection
from repro.core.policy import PlacementDecision, PlacementPolicy

__all__ = [
    "Array",
    "AsyncCheckpoint",
    "CheckpointRecord",
    "CheckpointSection",
    "DRAMArray",
    "MutationTracker",
    "NVMalloc",
    "NVMArray",
    "NVMVariable",
    "PlacementDecision",
    "PlacementPolicy",
    "SnapshotGuard",
]
