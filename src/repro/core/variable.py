"""Typed variable views over DRAM and NVM allocations.

Workload kernels are written against the :class:`Array` interface so that
placement (DRAM vs aggregate NVM store) is a one-line decision — exactly
the explicit control NVMalloc exists to provide.  All data-path methods
are simulation-process generators: call them with ``yield from`` inside a
process.  Real bytes flow end to end, so tests can verify numerical
results, not just timings.
"""

from __future__ import annotations

import abc
import typing
from collections.abc import Generator

import numpy as np

from repro.devices.base import AccessKind
from repro.devices.dram import DRAM
from repro.errors import NVMallocError
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - avoids a mem<->core cycle
    from repro.mem.mmap import MmapRegion


class NVMVariable:
    """A raw byte region allocated from the NVM store (``nvmvar``).

    Thin ownership record around an :class:`MmapRegion`: the application
    sees only the memory-mapped variable, never the backing file name
    (paper §III-C).
    """

    def __init__(self, region: "MmapRegion", *, owner: str, backing_path: str) -> None:
        self.region = region
        self.owner = owner
        self._backing_path = backing_path

    @property
    def nbytes(self) -> int:
        """Size of the region in bytes."""
        return self.region.length

    @property
    def backing_path(self) -> str:
        """Internal file name on the aggregate store (library-internal)."""
        return self._backing_path

    def read(self, offset: int, length: int) -> Generator[Event, object, bytearray]:
        """Read ``length`` bytes at ``offset`` (process generator).

        The result is a fresh caller-owned buffer (see
        :meth:`PageCache.read`).
        """
        return self.region.read(offset, length)

    def write(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write ``data`` at ``offset`` (process generator)."""
        return self.region.write(offset, data)

    def __repr__(self) -> str:
        return f"<NVMVariable {self.nbytes}B owner={self.owner}>"


class Array(abc.ABC):
    """Uniform typed-array interface over DRAM- or NVM-resident storage.

    1-D or 2-D, C (row-major) layout.  Slices move contiguous byte
    ranges; element access moves one item.  2-D column reads gather one
    item per row — deliberately, because that is precisely the access
    pattern whose cost the paper's Fig. 5 quantifies.
    """

    def __init__(self, shape: tuple[int, ...], dtype: np.dtype) -> None:
        if len(shape) not in (1, 2) or any(s <= 0 for s in shape):
            raise NVMallocError(f"unsupported array shape {shape}")
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize

    @property
    def size(self) -> int:
        """Total number of elements."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        """Size of the region in bytes."""
        return self.size * self.itemsize

    @property
    def ndim(self) -> int:
        """Number of dimensions (1 or 2)."""
        return len(self.shape)

    def _flat_offset(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise IndexError(f"flat index {index} out of range for {self.shape}")
        return index * self.itemsize

    # -- raw byte plumbing supplied by subclasses ----------------------
    @abc.abstractmethod
    def read_bytes(
        self, offset: int, length: int
    ) -> Generator[Event, object, bytes | bytearray]:
        """Read raw bytes from the backing storage.

        A ``bytearray`` result is a fresh caller-owned snapshot; a
        ``bytes`` result may be shared and must be copied before
        mutation.
        """

    @abc.abstractmethod
    def write_bytes(
        self, offset: int, data: bytes | bytearray | memoryview
    ) -> Generator[Event, object, None]:
        """Write raw bytes to the backing storage.

        ``data`` is only valid until the write generator finishes:
        implementations must consume (copy) it before returning and may
        not retain references to it.
        """

    # -- typed access ---------------------------------------------------
    def get(self, index: int) -> Generator[Event, object, np.generic]:
        """One element by flat index."""
        data = yield from self.read_bytes(self._flat_offset(index), self.itemsize)
        return np.frombuffer(data, dtype=self.dtype, count=1)[0]

    def set(self, index: int, value: object) -> Generator[Event, object, None]:
        """Store one element by flat index."""
        payload = np.asarray(value, dtype=self.dtype).tobytes()
        yield from self.write_bytes(self._flat_offset(index), payload)

    def read_slice(self, start: int, stop: int) -> Generator[Event, object, np.ndarray]:
        """Contiguous flat elements ``[start, stop)``."""
        if not 0 <= start <= stop <= self.size:
            raise IndexError(f"slice [{start}, {stop}) out of range")
        data = yield from self.read_bytes(
            start * self.itemsize, (stop - start) * self.itemsize
        )
        arr = np.frombuffer(data, dtype=self.dtype)
        if type(data) is bytearray:
            # A bytearray result is a fresh caller-owned snapshot (see
            # PageCache.read): wrap it writably instead of copying.
            return arr
        return arr.copy()

    def write_slice(
        self, start: int, values: np.ndarray
    ) -> Generator[Event, object, None]:
        """Store contiguous flat elements beginning at ``start``.

        Plain function returning a process generator: validation happens
        eagerly, then the backend's generator is handed straight to the
        caller's ``yield from`` (no wrapper frame on the resume path).
        """
        values = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        if start < 0 or start + values.size > self.size:
            raise IndexError(
                f"slice [{start}, {start + values.size}) out of range"
            )
        # Hand the array's own bytes down instead of materializing a
        # tobytes() copy: every write_bytes backend consumes the payload
        # (slices, frombuffer, len) before the caller can touch the
        # array again, because the caller is suspended until the write
        # generator completes.
        return self.write_bytes(start * self.itemsize, values.data.cast("B"))

    # -- 2-D helpers ------------------------------------------------------
    def _check_2d(self) -> tuple[int, int]:
        if self.ndim != 2:
            raise NVMallocError("row/column access requires a 2-D array")
        rows, cols = self.shape
        return rows, cols

    def read_row(self, row: int) -> Generator[Event, object, np.ndarray]:
        """One full row (contiguous: a single ranged read)."""
        rows, cols = self._check_2d()
        if not 0 <= row < rows:
            raise IndexError(f"row {row} out of range")
        return (yield from self.read_slice(row * cols, (row + 1) * cols))

    def write_row(self, row: int, values: np.ndarray) -> Generator[Event, object, None]:
        """Store one full row (contiguous: a single ranged write)."""
        rows, cols = self._check_2d()
        if not 0 <= row < rows:
            raise IndexError(f"row {row} out of range")
        values = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        if values.size != cols:
            raise ValueError(f"row of {cols} elements expected, got {values.size}")
        yield from self.write_slice(row * cols, values)

    def read_rows(self, r0: int, r1: int) -> Generator[Event, object, np.ndarray]:
        """Rows ``[r0, r1)`` as one contiguous ranged read."""
        rows, cols = self._check_2d()
        if not 0 <= r0 <= r1 <= rows:
            raise IndexError(f"rows [{r0}, {r1}) out of range")
        flat = yield from self.read_slice(r0 * cols, r1 * cols)
        return flat.reshape(r1 - r0, cols)

    def read_column(self, col: int) -> Generator[Event, object, np.ndarray]:
        """One column: ``rows`` strided single-element reads."""
        rows, cols = self._check_2d()
        if not 0 <= col < cols:
            raise IndexError(f"column {col} out of range")
        out = np.empty(rows, dtype=self.dtype)
        for row in range(rows):
            out[row] = yield from self.get(row * cols + col)
        return out

    def read_block(
        self, r0: int, r1: int, c0: int, c1: int
    ) -> Generator[Event, object, np.ndarray]:
        """Rectangular tile ``[r0:r1, c0:c1]``: one ranged read per row."""
        rows, cols = self._check_2d()
        if not (0 <= r0 <= r1 <= rows and 0 <= c0 <= c1 <= cols):
            raise IndexError(f"block [{r0}:{r1}, {c0}:{c1}] out of range")
        out = np.empty((r1 - r0, c1 - c0), dtype=self.dtype)
        for row in range(r0, r1):
            base = row * cols
            out[row - r0] = yield from self.read_slice(base + c0, base + c1)
        return out

    def write_block(
        self, r0: int, c0: int, values: np.ndarray
    ) -> Generator[Event, object, None]:
        """Store a rectangular tile with its top-left corner at (r0, c0)."""
        rows, cols = self._check_2d()
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.ndim != 2:
            raise ValueError("write_block requires a 2-D tile")
        if r0 < 0 or c0 < 0 or r0 + values.shape[0] > rows or c0 + values.shape[1] > cols:
            raise IndexError("tile exceeds array bounds")
        for i in range(values.shape[0]):
            yield from self.write_slice((r0 + i) * cols + c0, values[i])


class DRAMArray(Array):
    """An array resident in node-local DRAM.

    Holds real bytes in a numpy buffer; accesses charge DRAM device time
    and the allocation counts against the node's DRAM budget (freed via
    :meth:`free`).
    """

    def __init__(self, dram: DRAM, shape: tuple[int, ...], dtype: np.dtype) -> None:
        super().__init__(shape, dtype)
        self.dram = dram
        dram.allocate(self.nbytes)
        self._buffer = np.zeros(self.size, dtype=self.dtype)
        self._freed = False

    def read_bytes(self, offset: int, length: int) -> Generator[Event, object, bytes]:
        """Read raw bytes from the backing storage."""
        self._check_alive()
        yield from self.dram.access(AccessKind.READ, length)
        raw = self._buffer.view(np.uint8)
        return raw[offset : offset + length].tobytes()

    def write_bytes(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write raw bytes to the backing storage."""
        self._check_alive()
        yield from self.dram.access(AccessKind.WRITE, len(data))
        raw = self._buffer.view(np.uint8)
        raw[offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def free(self) -> None:
        """Release the DRAM reservation."""
        if not self._freed:
            self.dram.free(self.nbytes)
            self._freed = True

    def _check_alive(self) -> None:
        if self._freed:
            raise NVMallocError("access to freed DRAMArray")

    def __repr__(self) -> str:
        return f"<DRAMArray {self.shape} {self.dtype} on {self.dram.name}>"


class NVMArray(Array):
    """An array resident on the aggregate NVM store via ``ssdmalloc``."""

    def __init__(
        self, variable: NVMVariable, shape: tuple[int, ...], dtype: np.dtype
    ) -> None:
        super().__init__(shape, dtype)
        if self.nbytes > variable.nbytes:
            raise NVMallocError(
                f"array of {self.nbytes} bytes exceeds variable of "
                f"{variable.nbytes}"
            )
        self.variable = variable

    def read_bytes(
        self, offset: int, length: int
    ) -> Generator[Event, object, bytearray]:
        """Read raw bytes from the backing storage."""
        return self.variable.read(offset, length)

    def write_bytes(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write raw bytes to the backing storage."""
        return self.variable.write(offset, data)

    def __repr__(self) -> str:
        return f"<NVMArray {self.shape} {self.dtype} over {self.variable!r}>"
