#!/usr/bin/env python3
"""Quickstart: allocate, use, checkpoint, and free NVM-backed memory.

Builds a small simulated cluster, assembles an aggregate NVM store from
node-local SSDs, and walks through the NVMalloc API exactly as the paper's
Fig. 1 sketches it:

    nvmvar = ssdmalloc(...)      # memory-mapped variable on the store
    nvmvar[i] = x                # byte-addressable reads/writes
    ssdcheckpoint(...)           # one restart file, variable chunks linked
    ssdfree(nvmvar)              # unmap and release

Everything runs in simulated time: the printed seconds are virtual.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import HAL_TESTBED, make_hal_cluster
from repro.core import NVMalloc
from repro.sim import Engine
from repro.store import Benefactor, Manager
from repro.util import MiB, format_size, format_time


def main() -> None:
    # -- Substrate: a scaled-down HAL cluster (16 nodes x 8 cores) -----
    engine = Engine()
    cluster = make_hal_cluster(engine, HAL_TESTBED.scaled(64))
    print(f"cluster: {cluster}")

    # -- Aggregate NVM store: benefactors contribute node-local SSDs ---
    manager = Manager(cluster.node(0))
    for node in cluster.nodes[:4]:
        manager.register_benefactor(Benefactor(node, contribution=64 * MiB))
    print(
        f"aggregate store: {len(manager.benefactors())} benefactors, "
        f"{format_size(manager.total_capacity())} total"
    )

    # -- NVMalloc context on a compute node -----------------------------
    lib = NVMalloc(
        cluster.node(5),
        manager,
        fuse_cache_bytes=2 * MiB,
        page_cache_bytes=1 * MiB,
    )

    def app():
        # Allocate a 2-D array from the NVM store.  Under the hood this
        # creates a striped file on the benefactors and memory-maps it;
        # the application only ever sees the array.
        matrix = yield from lib.ssdmalloc_array((256, 256), np.float64)
        print(f"allocated {format_size(matrix.nbytes)} on the NVM store")

        # Byte-addressable access through the mmap emulation.
        for row in range(256):
            yield from matrix.write_row(
                row, np.full(256, float(row), dtype=np.float64)
            )
        sample = yield from matrix.read_rows(100, 102)
        assert np.all(sample[0] == 100.0) and np.all(sample[1] == 101.0)
        print("read-after-write verified through the full stack")

        # Checkpoint: DRAM state is written; the matrix's chunks are
        # LINKED, not copied (paper §III-E).
        dram_state = b"iteration=1;" * 1000
        record = yield from lib.ssdcheckpoint(
            "quickstart", 0, dram_state, [("matrix", matrix.variable)]
        )
        print(
            f"checkpoint: wrote {format_size(record.bytes_written)}, "
            f"linked {format_size(record.bytes_linked)} (zero-copy)"
        )

        # Mutate after the checkpoint: copy-on-write protects the frozen
        # view automatically.
        yield from matrix.write_row(100, np.zeros(256))
        _, frozen = yield from lib.restore("quickstart", 0)
        frozen_row = np.frombuffer(
            frozen["matrix"], dtype=np.float64
        ).reshape(256, 256)[100]
        assert np.all(frozen_row == 100.0), "checkpoint must stay frozen"
        print("post-checkpoint mutation isolated by copy-on-write")

        yield from lib.ssdfree(matrix.variable)
        print("freed; store space reclaimed")
        return engine.now

    elapsed = engine.run(engine.process(app()))
    print(f"\nvirtual time elapsed: {format_time(elapsed)}")
    hit = lib.mount.cache.stats.hit_rate
    print(f"FUSE chunk-cache hit rate: {hit:.1%}")


if __name__ == "__main__":
    main()
