#!/usr/bin/env python3
"""A GTS-like particle simulation running beyond DRAM (paper §I).

The paper's motivating application is the GTS fusion code: particle data
consumes ~2 GB per core, so DRAM decides how many cores a job can use.
This example runs a distilled particle-in-cell loop in three regimes on
the same simulated cluster:

1. comfortable DRAM — the placement policy keeps everything in memory;
2. tight DRAM — the policy spills the particle arrays to the NVM store
   automatically, and the run still verifies against the reference;
3. tight DRAM with checkpointing — the particle state is checkpointed
   every other step at near-zero cost (chunks linked, not copied).

Run:  python examples/particle_simulation.py
"""

from repro.experiments import SMALL, Testbed
from repro.util import KiB, MiB, format_size, format_time
from repro.workloads import ScienceAppConfig, run_science_app


def run(label: str, config: ScienceAppConfig) -> None:
    testbed = Testbed(SMALL.with_(cpu_slowdown=1.0))
    job = testbed.job(8, 4, 4)
    result = run_science_app(job, config)
    particles = config.particle_bytes_per_rank * job.config.num_ranks
    print(f"{label}:")
    print(f"  particle data: {format_size(particles)} across "
          f"{job.config.num_ranks} ranks")
    print(f"  placement: particles -> {result.placements['particles']}, "
          f"field -> {result.placements['field']}")
    print(f"  step loop: {format_time(result.elapsed)} (virtual), "
          f"verified against reference: {result.verified}")
    if result.checkpoints_taken:
        print(f"  checkpoints: {result.checkpoints_taken} taken, "
              f"{format_size(result.checkpoint_bytes_written)} written vs "
              f"{format_size(result.checkpoint_bytes_linked)} linked, "
              f"restart verified: {result.restart_verified}")
    print()


def main() -> None:
    base = dict(grid_cells=1 << 12, particles_per_rank=1 << 14, steps=4)

    run("1. comfortable DRAM (policy keeps particles in memory)",
        ScienceAppConfig(**base, checkpoint_every=0, placement="auto",
                         dram_budget_per_rank=1 * MiB))

    run("2. tight DRAM (policy spills particles to the NVM store)",
        ScienceAppConfig(**base, checkpoint_every=0, placement="auto",
                         dram_budget_per_rank=64 * KiB))

    run("3. tight DRAM + checkpoint every 2 steps",
        ScienceAppConfig(**base, checkpoint_every=2, placement="nvm"))


if __name__ == "__main__":
    main()
