#!/usr/bin/env python3
"""Output staging through the aggregate NVM store (paper §II, §III-E).

An iterative application emits an output burst every timestep.  Writing
bursts straight to the parallel file system stalls compute for the full
PFS write; staging them on the fast NVM store and draining to the PFS in
the background hides the slow I/O behind the next compute phase — the
store's original role as an "I/O impedance matching device".

Run:  python examples/output_staging.py
"""

from repro.experiments import SMALL, Testbed
from repro.util import KiB, MiB, format_size, format_time
from repro.workloads import StagingConfig, run_staging


def run_mode(mode: str):
    testbed = Testbed(SMALL.with_(cpu_slowdown=1.0, dram_per_node=16 * MiB))
    job = testbed.job(8, 8, 8 if mode == "staged" else 0)
    config = StagingConfig(
        burst_bytes=512 * KiB, timesteps=4, compute_seconds=0.8, mode=mode,
    )
    return run_staging(job, testbed.pfs, config)


def main() -> None:
    print("64 ranks, 4 timesteps, 512 KiB output burst per rank per step")
    print(f"(total output: {format_size(64 * 4 * 512 * KiB)} to the PFS)\n")
    results = {}
    for mode in ("direct", "staged"):
        results[mode] = run_mode(mode)
        r = results[mode]
        print(f"{mode:>7s}: app done in {format_time(r.elapsed)}, "
              f"compute stalled on I/O for {format_time(r.compute_stall)}, "
              f"output verified: {r.verified}")
    direct, staged = results["direct"], results["staged"]
    print(
        f"\nstaging cut the I/O stall "
        f"{direct.compute_stall / staged.compute_stall:.1f}x and finished "
        f"{100 * (1 - staged.elapsed / direct.elapsed):.0f}% sooner, with "
        "identical bytes durable on the PFS"
    )


if __name__ == "__main__":
    main()
