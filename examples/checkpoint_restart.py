#!/usr/bin/env python3
"""Checkpoint/restart of an iterative stencil application (paper §III-E).

A heat-diffusion-style iteration keeps its (large) temperature field on
the aggregate NVM store via ``ssdmalloc`` and checkpoints every few
steps.  The example demonstrates:

- checkpoints that *link* the field's chunks instead of copying them —
  each ``ssdcheckpoint`` physically writes only the small DRAM state;
- copy-on-write isolation: older checkpoints stay bit-exact as the field
  keeps evolving;
- failure recovery: the run is killed mid-flight and restarted from the
  latest checkpoint, converging to the identical final field.

Run:  python examples/checkpoint_restart.py
"""

import numpy as np

from repro.cluster import HAL_TESTBED, make_hal_cluster
from repro.core import NVMalloc
from repro.sim import Engine
from repro.store import Benefactor, Manager
from repro.util import KiB, MiB, format_size

GRID = 128  # field is GRID x GRID float64
STEPS = 9
CHECKPOINT_EVERY = 3


def diffuse(field: np.ndarray) -> np.ndarray:
    """One explicit diffusion step (fixed boundary)."""
    out = field.copy()
    out[1:-1, 1:-1] = 0.25 * (
        field[:-2, 1:-1] + field[2:, 1:-1] + field[1:-1, :-2] + field[1:-1, 2:]
    )
    return out


def build_lib() -> tuple[Engine, NVMalloc]:
    engine = Engine()
    cluster = make_hal_cluster(engine, HAL_TESTBED.scaled(64))
    manager = Manager(cluster.node(0))
    for node in cluster.nodes[:4]:
        manager.register_benefactor(Benefactor(node, contribution=32 * MiB))
    lib = NVMalloc(
        cluster.node(5), manager,
        fuse_cache_bytes=1 * MiB, page_cache_bytes=512 * KiB,
    )
    return engine, lib


def simulate(run_until: int, restart_from: int | None = None):
    """Run the application; optionally restart from a checkpoint first.

    Returns (final step, final field, per-checkpoint written bytes, lib).
    """
    engine, lib = build_lib()

    def app():
        field_arr = yield from lib.ssdmalloc_array((GRID, GRID), np.float64)
        written = []
        if restart_from is None:
            field = np.zeros((GRID, GRID))
            field[0, :] = 100.0  # hot boundary
            start_step = 0
        else:
            # Restore DRAM state (the step counter) and the NVM field.
            dram, variables = yield from lib.restore("heat", restart_from)
            start_step = int(dram.decode())
            field = np.frombuffer(
                variables["field"], dtype=np.float64
            ).reshape(GRID, GRID).copy()
        yield from field_arr.write_slice(0, field.ravel())

        for step in range(start_step, run_until):
            flat = yield from field_arr.read_slice(0, GRID * GRID)
            field = diffuse(flat.reshape(GRID, GRID))
            yield from field_arr.write_slice(0, field.ravel())
            if (step + 1) % CHECKPOINT_EVERY == 0:
                record = yield from lib.ssdcheckpoint(
                    "heat", step + 1, str(step + 1).encode(),
                    [("field", field_arr.variable)],
                )
                written.append(record.bytes_written)
        final = yield from field_arr.read_slice(0, GRID * GRID)
        return run_until, final.reshape(GRID, GRID), written

    step, field, written = engine.run(engine.process(app()))
    return step, field, written, lib


def main() -> None:
    # Uninterrupted reference run.
    _, reference, written, _ = simulate(STEPS)
    field_bytes = GRID * GRID * 8
    print(
        f"field: {format_size(field_bytes)}; each checkpoint wrote only "
        f"{format_size(written[0])} (the step counter) and linked the field"
    )

    # "Crash" after 7 steps (latest checkpoint is step 6), restart there.
    crash_engine_step = 7
    _, _, _, crashed_lib = simulate(crash_engine_step)
    latest = (crash_engine_step // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
    print(f"simulated failure at step {crash_engine_step}; "
          f"restarting from checkpoint @ step {latest}")

    # Fresh process restarts from the surviving checkpoint state.  (The
    # checkpoint files live on the aggregate store; here we re-run the
    # pre-crash steps in a fresh simulation to produce them, then restore.)
    engine, lib = build_lib()

    def full_run_with_restart():
        # Phase 1: run to the crash point, checkpointing as we go.
        field_arr = yield from lib.ssdmalloc_array((GRID, GRID), np.float64)
        field = np.zeros((GRID, GRID)); field[0, :] = 100.0
        yield from field_arr.write_slice(0, field.ravel())
        for step in range(crash_engine_step):
            flat = yield from field_arr.read_slice(0, GRID * GRID)
            field = diffuse(flat.reshape(GRID, GRID))
            yield from field_arr.write_slice(0, field.ravel())
            if (step + 1) % CHECKPOINT_EVERY == 0:
                yield from lib.ssdcheckpoint(
                    "heat", step + 1, str(step + 1).encode(),
                    [("field", field_arr.variable)],
                )
        # Crash: the live variable is lost, the checkpoints survive.
        yield from lib.ssdfree(field_arr.variable)

        # Phase 2: restart from the latest checkpoint.
        dram, variables = yield from lib.restore("heat", latest)
        resume_step = int(dram.decode())
        field = np.frombuffer(
            variables["field"], dtype=np.float64
        ).reshape(GRID, GRID).copy()
        field_arr = yield from lib.ssdmalloc_array((GRID, GRID), np.float64)
        yield from field_arr.write_slice(0, field.ravel())
        for step in range(resume_step, STEPS):
            flat = yield from field_arr.read_slice(0, GRID * GRID)
            field = diffuse(flat.reshape(GRID, GRID))
            yield from field_arr.write_slice(0, field.ravel())
        final = yield from field_arr.read_slice(0, GRID * GRID)
        return final.reshape(GRID, GRID)

    recovered = engine.run(engine.process(full_run_with_restart()))
    assert np.array_equal(recovered, reference), "restart diverged!"
    print("restarted run reproduces the uninterrupted result bit-exactly")


if __name__ == "__main__":
    main()
