#!/usr/bin/env python3
"""Sorting beyond physical memory: the paper's Table VI scenario.

The dataset is ~1.56x the aggregate DRAM budget.  Without NVMalloc the
cluster must sort in two passes, exchanging interim sorted runs through
the slow parallel file system; with NVMalloc the overflow lives on the
aggregate SSD store and one pass suffices.

Also demonstrates the placement policy helper deciding where the sort
buffers should live.

Run:  python examples/memory_extension_sort.py
"""

from repro.core import PlacementPolicy
from repro.core.policy import VariableProfile
from repro.experiments import SMALL, Testbed
from repro.util import format_size, format_time
from repro.workloads import SortConfig, run_quicksort


def main() -> None:
    scale = SMALL.with_(cpu_slowdown=1.0)
    data_bytes = scale.sort_elements * 8
    budget_bytes = scale.sort_dram_per_rank * 8 * 128
    print(
        f"dataset: {format_size(data_bytes)} of float64 keys; "
        f"DRAM sort budget: {format_size(budget_bytes)} "
        f"(oversubscribed {data_bytes / budget_bytes:.2f}x)"
    )

    # The placement policy reaches the same conclusion the paper argues
    # for: spill the sequentially-scanned bulk to NVM, keep the working
    # set in DRAM.
    policy = PlacementPolicy(dram_budget=budget_bytes)
    decisions = policy.place(
        [
            VariableProfile(
                "keys-bulk", data_bytes, reads_per_byte=3,
                writes_per_byte=1, sequential=True,
            ),
            VariableProfile(
                "merge-window", budget_bytes // 2, reads_per_byte=50,
                writes_per_byte=50, sequential=False,
            ),
        ]
    )
    for name, where in decisions.items():
        print(f"  placement policy: {name:14s} -> {where.value}")

    print(f"\n{'config':18s} {'mode':12s} {'time':>10s}  passes  verified")
    rows = []
    for label, mode, (x, y, z, remote) in [
        ("DRAM-only", "dram-2pass", (8, 16, 0, False)),
        ("NVMalloc local", "hybrid", (8, 16, 16, False)),
        ("NVMalloc remote", "hybrid", (8, 8, 8, True)),
    ]:
        testbed = Testbed(scale)
        job = testbed.job(x, y, z, remote_ssd=remote)
        result = run_quicksort(
            job,
            testbed.pfs,
            SortConfig(
                total_elements=scale.sort_elements,
                mode=mode,
                dram_elements_per_rank=scale.sort_dram_per_rank,
            ),
        )
        rows.append(result)
        print(
            f"{result.job_label:18s} {mode:12s} "
            f"{format_time(result.elapsed):>10s}  {result.passes:6d}  "
            f"{result.verified}"
        )

    speedup = rows[0].elapsed / rows[1].elapsed
    print(
        f"\none NVMalloc pass beats the 2-pass DRAM+PFS fallback by "
        f"{speedup:.1f}x (paper: ~10x at 200 GB scale)"
    )


if __name__ == "__main__":
    main()
