#!/usr/bin/env python3
"""SSD lifetime study: what NVMalloc's write optimization saves in wear.

The paper motivates the dirty-page write optimization with SSD lifetime
("NVM devices such as SSDs have limited write cycles. Our design needs to
optimize the total write volume").  This example drives the random-write
synthetic against the full stack twice — with and without the
optimization — and reads the flash-translation-layer wear counters off
the simulated device: host writes, write amplification, block erases,
and the resulting projected device lifetime.

Run:  python examples/device_wear_study.py
"""

from repro.experiments import SMALL, Testbed
from repro.util import format_size
from repro.workloads import RandWriteConfig, run_randwrite


def run_mode(optimized: bool):
    testbed = Testbed(SMALL)
    job = testbed.job(1, 1, 1, dirty_page_writeback=optimized)
    result = run_randwrite(
        job,
        RandWriteConfig(
            region_bytes=SMALL.randwrite_region,
            num_writes=SMALL.randwrite_count // 4,
        ),
    )
    ssd = job.benefactors[0].ssd
    return result, ssd


def main() -> None:
    print(
        f"workload: {SMALL.randwrite_count // 4} random byte writes into "
        f"{format_size(SMALL.randwrite_region)} on the NVM store\n"
    )
    reports = {}
    for optimized in (True, False):
        label = "dirty-page flush" if optimized else "whole-chunk flush"
        result, ssd = run_mode(optimized)
        wear = ssd.wear_report()
        reports[optimized] = (result, wear)
        print(f"{label}:")
        print(f"  bytes to SSD:        {format_size(result.written_to_ssd)}")
        print(f"  flash pages written: {wear['flash_pages_written']:.0f}")
        print(f"  blocks erased:       {wear['blocks_erased']:.0f}")
        print(f"  write amplification: {wear['write_amplification']:.2f}")
        print(f"  erase spread:        {wear['erase_min']:.0f}..{wear['erase_max']:.0f}")
        print()

    opt_pages = reports[True][1]["flash_pages_written"]
    raw_pages = reports[False][1]["flash_pages_written"]
    factor = raw_pages / max(opt_pages, 1)
    print(
        f"the write optimization cuts flash wear by {factor:.1f}x for this "
        "workload — directly multiplying device lifetime"
    )


if __name__ == "__main__":
    main()
