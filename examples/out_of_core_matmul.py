#!/usr/bin/env python3
"""Out-of-core matrix multiplication: the paper's Fig. 3 scenario.

Runs the five-stage MPI dense matrix multiplication on three
configurations of a simulated 16-node cluster:

- ``DRAM(2:16:0)``   — DRAM-only: matrix B is replicated per process, so
  only 2 of the 8 cores per node can be used;
- ``L-SSD(8:16:16)`` — NVMalloc maps B to one shared NVM-store file per
  node, freeing DRAM so all 8 cores work;
- ``R-SSD(8:8:1)``   — a single remote SSD serves 8 compute nodes: the
  paper's "add one $300 SSD per 8 nodes" cost argument.

The product is computed with real bytes end-to-end and verified against
``A @ B``.

Run:  python examples/out_of_core_matmul.py
"""

from repro.cluster import hottest
from repro.experiments import SMALL, Testbed
from repro.util import format_time
from repro.workloads import MatmulConfig, run_matmul


def run_config(x: int, y: int, z: int, remote: bool = False):
    testbed = Testbed(SMALL)
    job = testbed.job(x, y, z, remote_ssd=remote)
    config = MatmulConfig(
        n=SMALL.matrix_n,
        tile=SMALL.matrix_tile,
        b_placement="nvm" if z else "dram",
        shared_mmap=True,
    )
    result = run_matmul(job, testbed.pfs, config)
    if z:
        ssd = hottest(testbed.cluster, "ssd", window=testbed.engine.now)
        result.hot_ssd = f"{ssd.component} @ {ssd.utilization:.0%}"  # type: ignore[attr-defined]
    else:
        result.hot_ssd = "-"  # type: ignore[attr-defined]
    return result


def main() -> None:
    print(f"matrix: {SMALL.matrix_n}x{SMALL.matrix_n} float64 "
          f"({SMALL.matrix_bytes >> 20} MiB each), tile {SMALL.matrix_tile}")
    print(f"{'config':18s} {'total':>10s} {'compute':>10s}  verified  busiest SSD")
    results = {}
    for x, y, z, remote in [
        (2, 16, 0, False),
        (8, 16, 16, False),
        (8, 8, 1, True),
    ]:
        result = run_config(x, y, z, remote)
        results[result.job_label] = result
        print(
            f"{result.job_label:18s} {format_time(result.total):>10s} "
            f"{format_time(result.compute_time):>10s}  {str(result.verified):8s}"
            f"  {result.hot_ssd}"  # type: ignore[attr-defined]
        )

    dram = results["DRAM(2:16:0)"].total
    nvm = results["L-SSD(8:16:16)"].total
    cheap = results["R-SSD(8:8:1)"].total
    print(
        f"\nNVMalloc lets all 8 cores/node work: "
        f"{100 * (1 - nvm / dram):.1f}% faster than DRAM-only "
        "(paper: 53.75%)"
    )
    print(
        f"one remote SSD per 8 nodes, half the nodes: "
        f"{100 * (1 - cheap / dram):.1f}% faster than DRAM-only "
        "(paper: 32.47%)"
    )


if __name__ == "__main__":
    main()
